// Package graph implements the computation-graph IR used throughout MAGIS:
// a directed acyclic multigraph of operators with ordered inputs, plus the
// graph analyses the paper relies on — topological ordering, ancestor and
// descendant sets, induced sub-graphs with their inps/outs boundaries,
// convexity and weak-connectivity tests, dominator trees, narrow-waist
// values, and Weisfeiler-Lehman structural hashing.
//
// The package corresponds to the rustworkx substrate of the original
// implementation (§7.1) but is written from scratch on the Go standard
// library only.
//
// Node storage is ID-indexed slices rather than maps: IDs are small, dense,
// and never reused within a lineage, so slice indexing keeps the search's
// hot loops (clone, topo, hash, reachability) off the allocator. Clone
// packs all node and edge storage into three arena allocations, and
// CloneInto recycles a discarded graph's arenas entirely.
package graph

import (
	"fmt"
	"sort"

	"magis/internal/tensor"
)

// NodeID identifies a node within one Graph. IDs are never reused, so they
// stay stable across clones and transformations of the same lineage.
type NodeID int

// Invalid is the zero-ish sentinel for "no node".
const Invalid NodeID = -1

// Op is the behaviour a node payload must provide. The richer operator
// interfaces (cost, dimension maps, splitting) live in internal/ops and are
// reached by type assertion, keeping this package dependency-free.
type Op interface {
	// Kind is the operator name, e.g. "Matmul".
	Kind() string
	// OutShape is the shape of the single output tensor.
	OutShape() tensor.Shape
	// DType is the element type of the output tensor.
	DType() tensor.DType
	// AttrKey returns a string that, together with Kind and OutShape,
	// uniquely identifies the operator's semantics (used for hashing and
	// de-re-materialization matching).
	AttrKey() string
}

// Node is one operator instance in a Graph.
type Node struct {
	ID   NodeID
	Op   Op
	Ins  []NodeID // ordered producer list; duplicates allowed
	Name string   // optional human label
}

// OutBytes returns the device-memory footprint of the node's output tensor,
// i.e. size(v) in the paper's notation.
func (n *Node) OutBytes() int64 {
	return tensor.Bytes(n.Op.OutShape(), n.Op.DType())
}

// Graph is a mutable DAG of operator nodes. Both per-node tables are
// indexed directly by NodeID (nil / empty for absent IDs); IDs therefore
// stay small because they are allocated sequentially along a lineage.
type Graph struct {
	nodes []*Node     // nodes[id] == nil means id is absent
	suc   [][]NodeID  // consumer lists (with multiplicity)
	n     int         // live node count
	next  NodeID

	// Clone arenas, retained so CloneInto can recycle their capacity when
	// this graph is itself reused as a clone destination.
	nodeArena []Node
	idArena   []NodeID
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// grow extends the ID-indexed tables to cover id.
func (g *Graph) grow(id NodeID) {
	for NodeID(len(g.nodes)) <= id {
		g.nodes = append(g.nodes, nil)
		g.suc = append(g.suc, nil)
	}
}

// Add inserts a new node computing op from the given producers and returns
// its ID. All producers must already exist.
func (g *Graph) Add(op Op, ins ...NodeID) NodeID {
	return g.AddNamed("", op, ins...)
}

// AddNamed is Add with a human-readable label.
func (g *Graph) AddNamed(name string, op Op, ins ...NodeID) NodeID {
	for _, in := range ins {
		if !g.Has(in) {
			panic(fmt.Sprintf("graph: input %d does not exist", in))
		}
	}
	id := g.next
	g.next++
	g.grow(id)
	n := &Node{ID: id, Op: op, Ins: append([]NodeID(nil), ins...), Name: name}
	g.nodes[id] = n
	g.n++
	for _, in := range ins {
		g.suc[in] = append(g.suc[in], id)
	}
	return id
}

// AddWithID inserts a node under a caller-chosen ID, used by snapshot
// restore to rebuild a graph bit-identically (rewrites leave ID gaps that a
// compacting loader would close, changing iteration order downstream). The
// ID must be fresh and non-negative; all producers must already exist.
func (g *Graph) AddWithID(id NodeID, name string, op Op, ins ...NodeID) error {
	if id < 0 {
		return fmt.Errorf("graph: AddWithID: negative id %d", id)
	}
	if g.Has(id) {
		return fmt.Errorf("graph: AddWithID: id %d already exists", id)
	}
	for _, in := range ins {
		if !g.Has(in) {
			return fmt.Errorf("graph: AddWithID: input %d does not exist", in)
		}
	}
	g.grow(id)
	n := &Node{ID: id, Op: op, Ins: append([]NodeID(nil), ins...), Name: name}
	g.nodes[id] = n
	g.n++
	for _, in := range ins {
		g.suc[in] = append(g.suc[in], id)
	}
	if id >= g.next {
		g.next = id + 1
	}
	return nil
}

// NextID returns the ID the next Add will assign. IDs are never reused, so
// this is strictly greater than every ID ever allocated in the lineage.
func (g *Graph) NextID() NodeID { return g.next }

// SetNextID raises the next fresh ID, so a restored graph keeps allocating
// in the same sequence as the snapshotted original even when the highest
// IDs belonged to since-removed nodes. It cannot move backwards past an
// existing node.
func (g *Graph) SetNextID(next NodeID) error {
	for id := range g.nodes {
		if g.nodes[id] != nil && NodeID(id) >= next {
			return fmt.Errorf("graph: SetNextID(%d): node %d already exists", next, id)
		}
	}
	if next > g.next {
		g.next = next
	}
	return nil
}

// Node returns the node with the given ID, or nil if absent.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Has reports whether id is present.
func (g *Graph) Has(id NodeID) bool { return g.Node(id) != nil }

// NodeIDs returns all node IDs in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, g.n)
	for id, n := range g.nodes {
		if n != nil {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

// EachNodeID calls f for every node ID in ascending order, without
// allocating — the hot-loop alternative to NodeIDs.
func (g *Graph) EachNodeID(f func(NodeID)) {
	for id, n := range g.nodes {
		if n != nil {
			f(NodeID(id))
		}
	}
}

// sortIDs sorts a small NodeID slice ascending without reflection.
func sortIDs(s []NodeID) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	sort.Sort(idSlice(s))
}

type idSlice []NodeID

func (s idSlice) Len() int           { return len(s) }
func (s idSlice) Less(i, j int) bool { return s[i] < s[j] }
func (s idSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(s []NodeID) []NodeID {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Pre returns the distinct predecessors of v, ascending.
func (g *Graph) Pre(v NodeID) []NodeID {
	n := g.Node(v)
	if n == nil {
		return nil
	}
	out := append([]NodeID(nil), n.Ins...)
	sortIDs(out)
	return dedupSorted(out)
}

// Suc returns the distinct successors of v, ascending.
func (g *Graph) Suc(v NodeID) []NodeID {
	if v < 0 || int(v) >= len(g.suc) || len(g.suc[v]) == 0 {
		return nil
	}
	out := append([]NodeID(nil), g.suc[v]...)
	sortIDs(out)
	return dedupSorted(out)
}

// NumConsumers returns the number of distinct consumers of v.
func (g *Graph) NumConsumers(v NodeID) int { return len(g.Suc(v)) }

// SucEdges returns the number of consumer edges of v, with multiplicity.
func (g *Graph) SucEdges(v NodeID) int {
	if v < 0 || int(v) >= len(g.suc) {
		return 0
	}
	return len(g.suc[v])
}

// EachSucEdge calls f for every consumer edge of v, duplicates included —
// the allocation-free alternative to Suc for callers that tolerate
// multiplicity (e.g. max-position scans in the schedule simulators).
func (g *Graph) EachSucEdge(v NodeID, f func(NodeID)) {
	if v < 0 || int(v) >= len(g.suc) {
		return
	}
	for _, s := range g.suc[v] {
		f(s)
	}
}

// sucList returns the raw consumer-edge list of v (with multiplicity,
// unsorted). Internal analyses iterate it directly to stay off the
// allocator; callers must not mutate it.
func (g *Graph) sucList(v NodeID) []NodeID {
	if v < 0 || int(v) >= len(g.suc) {
		return nil
	}
	return g.suc[v]
}

// Remove deletes a node that has no consumers. It returns an error if the
// node is still consumed or does not exist.
func (g *Graph) Remove(v NodeID) error {
	n := g.Node(v)
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", v)
	}
	if len(g.suc[v]) > 0 {
		return fmt.Errorf("graph: node %d still has %d consumers", v, len(g.suc[v]))
	}
	for _, in := range n.Ins {
		g.suc[in] = removeOne(g.suc[in], v)
	}
	g.nodes[v] = nil
	g.suc[v] = nil
	g.n--
	return nil
}

// RemoveDead removes all nodes unreachable (forward) to any node in keep,
// i.e. nodes whose output no live node transitively consumes. Nodes in keep
// are always retained. It returns the number of removed nodes.
func (g *Graph) RemoveDead(keep []NodeID) int {
	live := make([]bool, len(g.nodes))
	stack := append([]NodeID(nil), keep...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v < 0 || int(v) >= len(g.nodes) || live[v] || g.nodes[v] == nil {
			continue
		}
		live[v] = true
		stack = append(stack, g.nodes[v].Ins...)
	}
	removed := 0
	// Delete in reverse topological order so Remove's consumer check holds.
	topo := g.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !live[v] {
			if err := g.Remove(v); err == nil {
				removed++
			}
		}
	}
	return removed
}

// ReplaceInput rewires node v so occurrences of producer old become new.
func (g *Graph) ReplaceInput(v, old, new NodeID) {
	n := g.Node(v)
	if n == nil {
		panic(fmt.Sprintf("graph: node %d does not exist", v))
	}
	changed := 0
	for i, in := range n.Ins {
		if in == old {
			n.Ins[i] = new
			changed++
		}
	}
	for i := 0; i < changed; i++ {
		g.suc[old] = removeOne(g.suc[old], v)
		g.suc[new] = append(g.suc[new], v)
	}
}

// ReplaceInputAt rewires the idx-th input slot of v to new.
func (g *Graph) ReplaceInputAt(v NodeID, idx int, new NodeID) {
	n := g.nodes[v]
	old := n.Ins[idx]
	n.Ins[idx] = new
	g.suc[old] = removeOne(g.suc[old], v)
	g.suc[new] = append(g.suc[new], v)
}

// RedirectConsumers makes every consumer of old consume new instead.
// Consumers listed in except are left alone.
func (g *Graph) RedirectConsumers(old, new NodeID, except ...NodeID) {
	skip := make(map[NodeID]bool, len(except))
	for _, e := range except {
		skip[e] = true
	}
	for _, c := range g.Suc(old) {
		if !skip[c] {
			g.ReplaceInput(c, old, new)
		}
	}
}

// SetOp replaces the operator payload of v in place.
func (g *Graph) SetOp(v NodeID, op Op) { g.nodes[v].Op = op }

// Inputs returns the graph's entry nodes (no predecessors), ascending.
func (g *Graph) Inputs() []NodeID {
	var out []NodeID
	for id, n := range g.nodes {
		if n != nil && len(n.Ins) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Outputs returns the graph's exit nodes (no successors), ascending.
func (g *Graph) Outputs() []NodeID {
	var out []NodeID
	for id, n := range g.nodes {
		if n != nil && len(g.suc[id]) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Topo returns a deterministic topological order (ties broken by ID).
// It panics on a cycle; use TopoE where cycles are an expected outcome.
func (g *Graph) Topo() []NodeID {
	order, err := g.TopoE()
	if err != nil {
		panic(err.Error())
	}
	return order
}

// TopoE returns a deterministic topological order, or an error if the
// graph contains a cycle (which region collapsing can legitimately
// produce and must detect).
func (g *Graph) TopoE() ([]NodeID, error) {
	order, _, err := g.topoInto(nil, nil, nil)
	return order, err
}

// TopoScratch holds reusable topological-sort work buffers; the zero value
// is ready to use and a scratch must not be shared between goroutines.
type TopoScratch struct {
	indeg    []int32
	frontier []NodeID
	order    []NodeID
}

// TopoInto is TopoE with caller-owned work buffers. The returned order
// aliases the scratch's internal buffer and is valid until the next
// TopoInto call on the same scratch.
func (g *Graph) TopoInto(sc *TopoScratch) ([]NodeID, error) {
	if sc == nil {
		order, _, err := g.topoInto(nil, nil, nil)
		return order, err
	}
	if cap(sc.indeg) < len(g.nodes) {
		sc.indeg = make([]int32, len(g.nodes))
	}
	if cap(sc.order) < g.n {
		sc.order = make([]NodeID, 0, g.n)
	}
	order, frontier, err := g.topoInto(sc.indeg[:len(g.nodes)], sc.order[:0], sc.frontier[:0])
	sc.order = order[:0]
	sc.frontier = frontier[:0]
	return order, err
}

// topoInto runs Kahn's algorithm with a sorted frontier. Readiness counts
// in-edges with multiplicity; a node becomes ready exactly when its last
// producer is emitted, so the resulting order is identical to counting
// distinct predecessors.
func (g *Graph) topoInto(indeg []int32, order, frontier []NodeID) ([]NodeID, []NodeID, error) {
	if indeg == nil {
		indeg = make([]int32, len(g.nodes))
	}
	if order == nil {
		order = make([]NodeID, 0, g.n)
	}
	for id, n := range g.nodes {
		if n == nil {
			indeg[id] = 0
			continue
		}
		indeg[id] = int32(len(n.Ins))
		if len(n.Ins) == 0 {
			frontier = append(frontier, NodeID(id))
		}
	}
	// frontier is ascending by construction (slice iteration order); a head
	// index pops from the front, and ready nodes are inserted in sorted
	// position within the live window frontier[head:].
	head := 0
	for head < len(frontier) {
		v := frontier[head]
		head++
		order = append(order, v)
		for _, s := range g.suc[v] {
			indeg[s]--
			if indeg[s] == 0 {
				i := head + sort.Search(len(frontier)-head, func(i int) bool { return frontier[head+i] >= s })
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = s
			}
		}
	}
	if len(order) != g.n {
		return nil, frontier, fmt.Errorf("graph: cycle detected in Topo")
	}
	return order, frontier, nil
}

// Clone returns a deep copy of the graph. Node IDs are preserved, so
// schedules and ID sets remain valid across the copy. Op payloads are
// shared (they are immutable by convention). All node and edge storage is
// packed into three arena allocations.
func (g *Graph) Clone() *Graph {
	c := &Graph{}
	g.cloneInto(c)
	return c
}

// CloneInto overwrites dst with a deep copy of g, recycling dst's backing
// arrays where capacity allows. dst must not share storage with any live
// graph; the optimizer's candidate pool uses this to recycle discarded
// search states instead of feeding the allocator.
func (g *Graph) CloneInto(dst *Graph) {
	if dst == g {
		return
	}
	g.cloneInto(dst)
}

func (g *Graph) cloneInto(c *Graph) {
	n := len(g.nodes)
	if cap(c.nodes) < n {
		c.nodes = make([]*Node, n)
	} else {
		c.nodes = c.nodes[:n]
	}
	if cap(c.suc) < n {
		c.suc = make([][]NodeID, n)
	} else {
		c.suc = c.suc[:n]
	}
	c.n = g.n
	c.next = g.next
	if cap(c.nodeArena) < g.n {
		c.nodeArena = make([]Node, g.n)
	} else {
		c.nodeArena = c.nodeArena[:g.n]
	}
	totalIns, totalSuc := 0, 0
	for id, node := range g.nodes {
		if node != nil {
			totalIns += len(node.Ins)
		}
		totalSuc += len(g.suc[id])
	}
	if cap(c.idArena) < totalIns+totalSuc {
		c.idArena = make([]NodeID, totalIns+totalSuc)
	} else {
		c.idArena = c.idArena[:totalIns+totalSuc]
	}
	arena, ids := c.nodeArena, c.idArena
	ai, off := 0, 0
	for id, node := range g.nodes {
		if node == nil {
			c.nodes[id] = nil
			c.suc[id] = nil
			continue
		}
		// Three-index sub-slices: a later append on Ins or a suc list
		// reallocates instead of clobbering a neighbour's arena region.
		ins := ids[off : off+len(node.Ins) : off+len(node.Ins)]
		copy(ins, node.Ins)
		off += len(node.Ins)
		arena[ai] = Node{ID: node.ID, Op: node.Op, Ins: ins, Name: node.Name}
		c.nodes[id] = &arena[ai]
		ai++
		s := g.suc[id]
		if len(s) == 0 {
			c.suc[id] = nil
			continue
		}
		sc := ids[off : off+len(s) : off+len(s)]
		copy(sc, s)
		off += len(s)
		c.suc[id] = sc
	}
}

// String renders a compact multi-line description, topologically ordered.
func (g *Graph) String() string {
	var b []byte
	for _, id := range g.Topo() {
		n := g.nodes[id]
		b = append(b, fmt.Sprintf("%4d %-14s %-18s ins=%v", id, n.Op.Kind(), n.Op.OutShape().String(), n.Ins)...)
		if n.Name != "" {
			b = append(b, ("  # " + n.Name)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}

func removeOne(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
