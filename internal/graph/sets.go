package graph

import "sort"

// Set is a node set with the boundary/closure operations from Table 1 of
// the paper.
type Set map[NodeID]bool

// NewSet builds a Set from IDs.
func NewSet(ids ...NodeID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Slice returns the members in ascending order.
func (s Set) Slice() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for id := range s {
		c[id] = true
	}
	return c
}

// Anc returns all (strict) ancestors of v: G.anc(v).
func (g *Graph) Anc(v NodeID) Set {
	out := make(Set)
	stack := g.Pre(v)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, g.Pre(u)...)
	}
	return out
}

// Des returns all (strict) descendants of v: G.des(v).
func (g *Graph) Des(v NodeID) Set {
	out := make(Set)
	stack := g.Suc(v)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, g.Suc(u)...)
	}
	return out
}

// Inps returns G.inps(S): the nodes outside S consumed by members of S.
func (g *Graph) Inps(s Set) Set {
	out := make(Set)
	for v := range s {
		for _, p := range g.Pre(v) {
			if !s[p] {
				out[p] = true
			}
		}
	}
	return out
}

// Outs returns G.outs(S): members of S whose output is consumed outside S
// or that are outputs of the whole graph.
func (g *Graph) Outs(s Set) Set {
	out := make(Set)
	for v := range s {
		sucs := g.Suc(v)
		if len(sucs) == 0 {
			out[v] = true
			continue
		}
		for _, c := range sucs {
			if !s[c] {
				out[v] = true
				break
			}
		}
	}
	return out
}

// IsConvex reports whether the induced sub-graph G[S] is convex, i.e. no
// path leaves S and re-enters it. Per the paper's constraint (2):
// G.inps(S) must be disjoint from the descendants of G.outs(S)... the
// equivalent and more direct check used here is: no input of S is a
// descendant of any output of S.
func (g *Graph) IsConvex(s Set) bool {
	inps := g.Inps(s)
	if len(inps) == 0 {
		return true
	}
	// Collect descendants of all outputs of S that lie outside S, and
	// verify none of them feeds back into S.
	outs := g.Outs(s)
	seen := make(Set)
	var stack []NodeID
	for o := range outs {
		for _, c := range g.Suc(o) {
			if !s[c] {
				stack = append(stack, c)
			}
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		if s[u] {
			return false // path left S and re-entered
		}
		stack = append(stack, g.Suc(u)...)
	}
	// Also no external descendant may be an input of S (it would create a
	// dependency cycle once S collapses to one step).
	for u := range seen {
		if inps[u] {
			return false
		}
	}
	return true
}

// IsWeaklyConnected reports whether G[S] is connected ignoring direction.
func (g *Graph) IsWeaklyConnected(s Set) bool {
	if len(s) <= 1 {
		return true
	}
	var start NodeID
	for v := range s {
		start = v
		break
	}
	seen := Set{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range append(g.Pre(u), g.Suc(u)...) {
			if s[w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(s)
}

// Components partitions S into weakly connected components of G[S],
// each returned in ascending ID order; components are ordered by their
// smallest member.
func (g *Graph) Components(s Set) [][]NodeID {
	seen := make(Set, len(s))
	var comps [][]NodeID
	for _, v := range s.Slice() {
		if seen[v] {
			continue
		}
		comp := []NodeID{}
		stack := []NodeID{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range append(g.Pre(u), g.Suc(u)...) {
				if s[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph extracts G[S] as a standalone Graph. Edges to producers outside
// S are dropped (the sub-graph's entries are exactly the members of S whose
// producers all lie outside S plus members with some external producers,
// whose Ins lists are filtered). Node IDs are preserved.
func (g *Graph) Subgraph(s Set) *Graph {
	sub := New()
	sub.next = g.next
	for v := range s {
		n := g.nodes[v]
		var ins []NodeID
		for _, in := range n.Ins {
			if s[in] {
				ins = append(ins, in)
			}
		}
		sub.nodes[v] = &Node{ID: v, Op: n.Op, Ins: ins, Name: n.Name}
	}
	for v := range s {
		for _, in := range sub.nodes[v].Ins {
			sub.suc[in] = append(sub.suc[in], v)
		}
	}
	return sub
}

// ReachIndex precomputes ancestor/descendant counts for every node using
// bitsets, enabling O(1) narrow-waist queries: nw(v) = |V| - |anc(v)| -
// |des(v)| - 1 (§6.1).
type ReachIndex struct {
	order []NodeID
	pos   map[NodeID]int
	nAnc  []int
	nDes  []int
}

// NewReachIndex builds the index for the current graph contents.
func NewReachIndex(g *Graph) *ReachIndex {
	order := g.Topo()
	pos := make(map[NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	n := len(order)
	words := (n + 63) / 64
	anc := make([][]uint64, n)
	for i := range anc {
		anc[i] = make([]uint64, words)
	}
	nAnc := make([]int, n)
	nDes := make([]int, n)
	// Ancestors accumulate forward in topo order.
	for i, v := range order {
		for _, p := range g.Pre(v) {
			pi := pos[p]
			for w := range anc[i] {
				anc[i][w] |= anc[pi][w]
			}
			anc[i][pi/64] |= 1 << (pi % 64)
		}
		nAnc[i] = popcount(anc[i])
	}
	// Descendants accumulate backward symmetrically.
	des := make([][]uint64, n)
	for i := range des {
		des[i] = make([]uint64, words)
	}
	for i := n - 1; i >= 0; i-- {
		for _, s := range g.Suc(order[i]) {
			si := pos[s]
			for w := range des[i] {
				des[i][w] |= des[si][w]
			}
			des[i][si/64] |= 1 << (si % 64)
		}
		nDes[i] = popcount(des[i])
	}
	return &ReachIndex{order: order, pos: pos, nAnc: nAnc, nDes: nDes}
}

// NW returns the narrow-waist value of v: the number of nodes neither an
// ancestor nor a descendant of v, minus one.
func (r *ReachIndex) NW(v NodeID) int {
	i, ok := r.pos[v]
	if !ok {
		return -1
	}
	return len(r.order) - r.nAnc[i] - r.nDes[i] - 1
}

// NumAnc returns |G.anc(v)|.
func (r *ReachIndex) NumAnc(v NodeID) int { return r.nAnc[r.pos[v]] }

// NumDes returns |G.des(v)|.
func (r *ReachIndex) NumDes(v NodeID) int { return r.nDes[r.pos[v]] }

func popcount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}
