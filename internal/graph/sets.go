package graph

// Set is a node set with the boundary/closure operations from Table 1 of
// the paper.
type Set map[NodeID]bool

// NewSet builds a Set from IDs.
func NewSet(ids ...NodeID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Slice returns the members in ascending order.
func (s Set) Slice() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for id := range s {
		c[id] = true
	}
	return c
}

// Anc returns all (strict) ancestors of v: G.anc(v).
func (g *Graph) Anc(v NodeID) Set {
	out := make(Set)
	n := g.Node(v)
	if n == nil {
		return out
	}
	stack := append([]NodeID(nil), n.Ins...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, g.nodes[u].Ins...)
	}
	return out
}

// Des returns all (strict) descendants of v: G.des(v).
func (g *Graph) Des(v NodeID) Set {
	out := make(Set)
	stack := append([]NodeID(nil), g.sucList(v)...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, g.sucList(u)...)
	}
	return out
}

// Inps returns G.inps(S): the nodes outside S consumed by members of S.
func (g *Graph) Inps(s Set) Set {
	out := make(Set)
	for v := range s {
		for _, p := range g.nodes[v].Ins {
			if !s[p] {
				out[p] = true
			}
		}
	}
	return out
}

// Outs returns G.outs(S): members of S whose output is consumed outside S
// or that are outputs of the whole graph.
func (g *Graph) Outs(s Set) Set {
	out := make(Set)
	for v := range s {
		sucs := g.sucList(v)
		if len(sucs) == 0 {
			out[v] = true
			continue
		}
		for _, c := range sucs {
			if !s[c] {
				out[v] = true
				break
			}
		}
	}
	return out
}

// IsConvex reports whether the induced sub-graph G[S] is convex, i.e. no
// path leaves S and re-enters it. Per the paper's constraint (2):
// G.inps(S) must be disjoint from the descendants of G.outs(S)... the
// equivalent and more direct check used here is: no input of S is a
// descendant of any output of S.
func (g *Graph) IsConvex(s Set) bool {
	inps := g.Inps(s)
	if len(inps) == 0 {
		return true
	}
	// Collect descendants of all outputs of S that lie outside S, and
	// verify none of them feeds back into S.
	outs := g.Outs(s)
	seen := make(Set)
	var stack []NodeID
	for o := range outs {
		for _, c := range g.sucList(o) {
			if !s[c] {
				stack = append(stack, c)
			}
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		if s[u] {
			return false // path left S and re-entered
		}
		stack = append(stack, g.sucList(u)...)
	}
	// Also no external descendant may be an input of S (it would create a
	// dependency cycle once S collapses to one step).
	for u := range seen {
		if inps[u] {
			return false
		}
	}
	return true
}

// IsWeaklyConnected reports whether G[S] is connected ignoring direction.
func (g *Graph) IsWeaklyConnected(s Set) bool {
	if len(s) <= 1 {
		return true
	}
	var start NodeID
	for v := range s {
		start = v
		break
	}
	seen := Set{start: true}
	stack := []NodeID{start}
	visit := func(w NodeID) {
		if s[w] && !seen[w] {
			seen[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.nodes[u].Ins {
			visit(w)
		}
		for _, w := range g.sucList(u) {
			visit(w)
		}
	}
	return len(seen) == len(s)
}

// Components partitions S into weakly connected components of G[S],
// each returned in ascending ID order; components are ordered by their
// smallest member.
func (g *Graph) Components(s Set) [][]NodeID {
	seen := make(Set, len(s))
	var comps [][]NodeID
	for _, v := range s.Slice() {
		if seen[v] {
			continue
		}
		comp := []NodeID{}
		stack := []NodeID{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			visit := func(w NodeID) {
				if s[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
			for _, w := range g.nodes[u].Ins {
				visit(w)
			}
			for _, w := range g.sucList(u) {
				visit(w)
			}
		}
		sortIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph extracts G[S] as a standalone Graph. Edges to producers outside
// S are dropped (the sub-graph's entries are exactly the members of S whose
// producers all lie outside S plus members with some external producers,
// whose Ins lists are filtered). Node IDs are preserved. Like Clone, all
// node and edge storage is packed into arena allocations.
func (g *Graph) Subgraph(s Set) *Graph {
	size := len(g.nodes)
	sub := &Graph{
		nodes: make([]*Node, size),
		suc:   make([][]NodeID, size),
		n:     len(s),
		next:  g.next,
	}
	// Count internal edges: each contributes one Ins slot and one suc slot.
	internal := 0
	for v := range s {
		for _, in := range g.nodes[v].Ins {
			if s[in] {
				internal++
			}
		}
	}
	sub.nodeArena = make([]Node, len(s))
	sub.idArena = make([]NodeID, 2*internal)
	arena, ids := sub.nodeArena, sub.idArena
	ai, off := 0, 0
	for v := range s {
		n := g.nodes[v]
		base := off
		for _, in := range n.Ins {
			if s[in] {
				ids[off] = in
				off++
			}
		}
		arena[ai] = Node{ID: v, Op: n.Op, Ins: ids[base:off:off], Name: n.Name}
		sub.nodes[v] = &arena[ai]
		ai++
	}
	// Consumer lists, placed in the second half of the arena via a
	// counting pass.
	cnt := make([]int32, size)
	for v := range s {
		for _, in := range sub.nodes[v].Ins {
			cnt[in]++
		}
	}
	for id, c := range cnt {
		if c > 0 {
			sub.suc[id] = ids[off:off:off+int(c)]
			off += int(c)
		}
	}
	for v := range s {
		for _, in := range sub.nodes[v].Ins {
			sub.suc[in] = append(sub.suc[in], v)
		}
	}
	return sub
}

// ReachIndex precomputes ancestor/descendant bitsets for every node,
// enabling O(1) narrow-waist queries: nw(v) = |V| - |anc(v)| - |des(v)| -
// 1 (§6.1). The index is immutable after construction and safe for
// concurrent reads; Rebase derives a successor index cheaply after a
// localized rewrite.
type ReachIndex struct {
	n    int     // live node count of the indexed graph
	pos  []int32 // NodeID -> bit position, -1 when absent
	nPos int     // total bit positions allocated (>= n after rebases)

	anc, des   [][]uint64 // NodeID -> ancestor/descendant bitset rows
	nAnc, nDes []int32    // NodeID -> popcounts
}

// NewReachIndex builds the index for the current graph contents. All
// bitset rows share one arena allocation.
func NewReachIndex(g *Graph) *ReachIndex {
	order := g.Topo()
	size := len(g.nodes)
	r := &ReachIndex{
		n:    g.n,
		pos:  make([]int32, size),
		nPos: len(order),
		anc:  make([][]uint64, size),
		des:  make([][]uint64, size),
		nAnc: make([]int32, size),
		nDes: make([]int32, size),
	}
	for i := range r.pos {
		r.pos[i] = -1
	}
	for i, v := range order {
		r.pos[v] = int32(i)
	}
	n := len(order)
	words := (n + 63) / 64
	arena := make([]uint64, 2*n*words)
	// Ancestors accumulate forward in topo order.
	for _, v := range order {
		row := arena[:words:words]
		arena = arena[words:]
		for _, p := range g.nodes[v].Ins {
			orBits(row, r.anc[p])
			pi := r.pos[p]
			row[pi/64] |= 1 << (pi % 64)
		}
		r.anc[v] = row
		r.nAnc[v] = int32(popcount(row))
	}
	// Descendants accumulate backward symmetrically.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		row := arena[:words:words]
		arena = arena[words:]
		for _, s := range g.sucList(v) {
			orBits(row, r.des[s])
			si := r.pos[s]
			row[si/64] |= 1 << (si % 64)
		}
		r.des[v] = row
		r.nDes[v] = int32(popcount(row))
	}
	return r
}

// orBits ORs src into dst over the shorter of the two lengths (rows from
// older index generations may be narrower).
func orBits(dst, src []uint64) {
	m := len(src)
	if len(dst) < m {
		m = len(dst)
	}
	for w := 0; w < m; w++ {
		dst[w] |= src[w]
	}
}

// NW returns the narrow-waist value of v: the number of nodes neither an
// ancestor nor a descendant of v, minus one.
func (r *ReachIndex) NW(v NodeID) int {
	if v < 0 || int(v) >= len(r.pos) || r.pos[v] < 0 {
		return -1
	}
	return r.n - int(r.nAnc[v]) - int(r.nDes[v]) - 1
}

// NumAnc returns |G.anc(v)|.
func (r *ReachIndex) NumAnc(v NodeID) int { return int(r.nAnc[v]) }

// NumDes returns |G.des(v)|.
func (r *ReachIndex) NumDes(v NodeID) int { return int(r.nDes[v]) }

// IsDes reports whether v is a strict descendant of d, in O(1).
func (r *ReachIndex) IsDes(d, v NodeID) bool {
	p := r.pos[v]
	row := r.des[d]
	if w := int(p / 64); w < len(row) {
		return row[w]&(1<<(p%64)) != 0
	}
	return false
}

// IsAnc reports whether v is a strict ancestor of a, in O(1).
func (r *ReachIndex) IsAnc(a, v NodeID) bool {
	p := r.pos[v]
	row := r.anc[a]
	if w := int(p / 64); w < len(row) {
		return row[w]&(1<<(p%64)) != 0
	}
	return false
}

// Rebase derives the reachability index of g from the index of a
// structurally similar predecessor graph prevG (typically the parent
// M-State's evaluation graph before a single rewrite). Rows of nodes whose
// ancestor (resp. descendant) cone is untouched are copied; only nodes
// downstream (resp. upstream) of the mutation are recomputed. The clean
// check is self-verifying — it compares node structure directly, so a
// wrong or incomplete mutation hint can only cost speed, never
// correctness. Returns nil when the delta is too large to be worth it or
// the position space has grown too sparse; callers then fall back to
// NewReachIndex.
func Rebase(prev *ReachIndex, prevG, g *Graph) *ReachIndex {
	if prev == nil || prevG == nil {
		return nil
	}
	order, err := g.TopoE()
	if err != nil {
		return nil
	}
	size := len(g.nodes)
	// Assign bit positions: survivors keep theirs, new nodes extend.
	pos := make([]int32, size)
	for i := range pos {
		pos[i] = -1
	}
	nPos := prev.nPos
	for _, v := range order {
		if int(v) < len(prev.pos) && prev.pos[v] >= 0 {
			pos[v] = prev.pos[v]
		} else {
			pos[v] = int32(nPos)
			nPos++
		}
	}
	// Retired positions of removed nodes widen every row; once the space
	// is mostly dead weight a fresh build is cheaper.
	if nPos > 2*g.n+64 {
		return nil
	}
	words := (nPos + 63) / 64
	r := &ReachIndex{
		n:    g.n,
		pos:  pos,
		nPos: nPos,
		anc:  make([][]uint64, size),
		des:  make([][]uint64, size),
		nAnc: make([]int32, size),
		nDes: make([]int32, size),
	}
	arena := make([]uint64, 2*g.n*words)
	row := func() []uint64 {
		w := arena[:words:words]
		arena = arena[words:]
		return w
	}
	// cleanAnc[v]: v exists in prevG with identical Ins and every producer
	// clean — then prev's ancestor row is exact in the new graph.
	cleanAnc := make([]bool, size)
	dirty := 0
	for _, v := range order {
		pn := prevG.Node(v)
		n := g.nodes[v]
		ok := pn != nil && idsEqual(pn.Ins, n.Ins)
		if ok {
			for _, p := range n.Ins {
				if !cleanAnc[p] {
					ok = false
					break
				}
			}
		}
		cleanAnc[v] = ok
		if !ok {
			dirty++
		}
	}
	// cleanDes[v]: symmetric over consumer lists.
	cleanDes := make([]bool, size)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ok := prevG.Has(v) && idsEqualUnordered(prevG.sucList(v), g.sucList(v))
		if ok {
			for _, s := range g.sucList(v) {
				if !cleanDes[s] {
					ok = false
					break
				}
			}
		}
		cleanDes[v] = ok
		if !ok {
			dirty++
		}
	}
	if dirty > g.n {
		return nil // more than half the rows need recomputing anyway
	}
	for _, v := range order {
		w := row()
		if cleanAnc[v] {
			copy(w, prev.anc[v])
			r.nAnc[v] = prev.nAnc[v]
		} else {
			for _, p := range g.nodes[v].Ins {
				orBits(w, r.anc[p])
				pi := pos[p]
				w[pi/64] |= 1 << (pi % 64)
			}
			r.nAnc[v] = int32(popcount(w))
		}
		r.anc[v] = w
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		w := row()
		if cleanDes[v] {
			copy(w, prev.des[v])
			r.nDes[v] = prev.nDes[v]
		} else {
			for _, s := range g.sucList(v) {
				orBits(w, r.des[s])
				si := pos[s]
				w[si/64] |= 1 << (si % 64)
			}
			r.nDes[v] = int32(popcount(w))
		}
		r.des[v] = w
	}
	return r
}

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// idsEqualUnordered compares two edge lists as multisets. Lists are tiny;
// the quadratic fallback only runs when the element-wise compare fails.
func idsEqualUnordered(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	if idsEqual(a, b) {
		return true
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && x == y {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func popcount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}
