package graph

import (
	"errors"
	"fmt"

	"magis/internal/tensor"
)

// ErrInvariant is the sentinel wrapped by every Validate failure, so
// callers can errors.Is a validation error regardless of which invariant
// broke.
var ErrInvariant = errors.New("graph: invariant violation")

// InputShaped is implemented by operator payloads that record the shapes
// they expect from their producers (ops.Spec does). Validate uses it to
// re-check each edge's shape agreement without this package depending on
// the operator catalog.
type InputShaped interface {
	NumIns() int
	InShape(i int) tensor.Shape
}

// Kind names of the host-transfer operators, mirrored from internal/ops
// (which this package must not import) and asserted equal there by test.
const (
	kindStore = "Store"
	kindLoad  = "Load"
)

// opaque reports that a payload exposes byte accounting but no shape
// structure — a collapsed fission region. Every catalog operator is an
// ops.Spec (InputShaped) with a ranked output shape, so "not InputShaped
// and shapeless" precisely identifies the region nodes of an evaluation
// graph.
func opaque(op Op) bool {
	if _, shaped := op.(InputShaped); shaped {
		return false
	}
	return op.OutShape().Rank() == 0
}

// Validate checks the full set of structural invariants every graph the
// optimizer accepts must satisfy:
//
//  1. edge consistency — every input refers to an existing node, and the
//     consumer lists mirror the input lists with equal multiplicity;
//  2. acyclicity;
//  3. shape agreement — for every node whose payload records expected
//     input shapes (InputShaped), the number of inputs matches and each
//     producer's output shape equals the shape the consumer expects
//     (local shape re-inference over every edge); edges from opaque
//     producers — payloads that are not InputShaped and declare no output
//     shape, i.e. collapsed fission regions carrying byte sizes — are
//     exempt, mirroring the consumer-side exemption;
//  4. Store/Load pairing — a Load consumes exactly one Store, a Store has
//     exactly one producer (which is not itself a transfer), and every
//     consumer of a Store is a Load (host-resident tensors cannot feed
//     device compute directly). Opaque nodes are exempt on either end:
//     a collapsed region may contain the matching Load or Store among
//     its members.
//
// A buggy transformation rule violating any of these corrupts every later
// scheduling and memory measurement, so the optimizer runs Validate on
// accepted candidates when Options.CheckInvariants is set. All errors wrap
// ErrInvariant.
func Validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("%w: nil graph", ErrInvariant)
	}
	// 1. Edge consistency: Ins exist; suc multiplicity mirrors Ins.
	type edge struct{ from, to NodeID }
	fromIns := make(map[edge]int)
	for id, n := range g.nodes {
		if n == nil {
			continue // absent slot
		}
		if n.ID != NodeID(id) {
			return fmt.Errorf("%w: node keyed %d carries ID %d", ErrInvariant, id, n.ID)
		}
		if n.Op == nil {
			return fmt.Errorf("%w: node %d has nil op", ErrInvariant, id)
		}
		for _, in := range n.Ins {
			if !g.Has(in) {
				return fmt.Errorf("%w: node %d consumes dangling producer %d", ErrInvariant, id, in)
			}
			fromIns[edge{in, NodeID(id)}]++
		}
	}
	fromSuc := make(map[edge]int)
	for from, cs := range g.suc {
		if len(cs) > 0 && g.nodes[from] == nil {
			return fmt.Errorf("%w: dangling node %d still has consumers %v", ErrInvariant, from, cs)
		}
		for _, to := range cs {
			fromSuc[edge{NodeID(from), to}]++
		}
	}
	if len(fromIns) != len(fromSuc) {
		return fmt.Errorf("%w: %d distinct edges via inputs, %d via consumer lists",
			ErrInvariant, len(fromIns), len(fromSuc))
	}
	for e, n := range fromIns {
		if fromSuc[e] != n {
			return fmt.Errorf("%w: edge %d->%d has multiplicity %d in inputs but %d in consumer list",
				ErrInvariant, e.from, e.to, n, fromSuc[e])
		}
	}
	// 2. Acyclicity.
	if _, err := g.TopoE(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvariant, err)
	}
	// 3. Shape agreement along every edge.
	for id, n := range g.nodes {
		if n == nil {
			continue
		}
		is, ok := n.Op.(InputShaped)
		if !ok {
			continue // opaque payloads (collapsed regions) account themselves
		}
		if len(n.Ins) != is.NumIns() {
			return fmt.Errorf("%w: node %d (%s) has %d inputs, op expects %d",
				ErrInvariant, id, n.Op.Kind(), len(n.Ins), is.NumIns())
		}
		for i, in := range n.Ins {
			if opaque(g.nodes[in].Op) {
				continue // opaque producers (collapsed regions) declare no shape
			}
			got := g.nodes[in].Op.OutShape()
			want := is.InShape(i)
			if !got.Equal(want) {
				return fmt.Errorf("%w: node %d (%s) input %d: producer %d (%s) yields %v, op expects %v",
					ErrInvariant, id, n.Op.Kind(), i, in, g.nodes[in].Op.Kind(), got, want)
			}
		}
	}
	// 4. Store/Load pairing.
	for id, n := range g.nodes {
		if n == nil {
			continue
		}
		switch n.Op.Kind() {
		case kindLoad:
			if len(n.Ins) != 1 {
				return fmt.Errorf("%w: Load %d has %d producers, want 1", ErrInvariant, id, len(n.Ins))
			}
			if p := g.nodes[n.Ins[0]]; p.Op.Kind() != kindStore && !opaque(p.Op) {
				return fmt.Errorf("%w: Load %d consumes %s %d, want Store",
					ErrInvariant, id, p.Op.Kind(), p.ID)
			}
		case kindStore:
			if len(n.Ins) != 1 {
				return fmt.Errorf("%w: Store %d has %d producers, want 1", ErrInvariant, id, len(n.Ins))
			}
			if p := g.nodes[n.Ins[0]]; p.Op.Kind() == kindStore || p.Op.Kind() == kindLoad {
				return fmt.Errorf("%w: Store %d consumes transfer %s %d",
					ErrInvariant, id, p.Op.Kind(), p.ID)
			}
			cs := g.Suc(NodeID(id))
			if len(cs) == 0 {
				return fmt.Errorf("%w: Store %d has no Load consumer", ErrInvariant, id)
			}
			for _, c := range cs {
				if g.nodes[c].Op.Kind() != kindLoad && !opaque(g.nodes[c].Op) {
					return fmt.Errorf("%w: Store %d feeds %s %d, host tensors only feed Loads",
						ErrInvariant, id, g.nodes[c].Op.Kind(), c)
				}
			}
		}
	}
	return nil
}
