package graph

// FNV-1a 64-bit constants (hash/fnv), inlined so the hot loop hashes
// without allocating a hash.Hash64 per node.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// fnvUint64 folds x in little-endian byte order, matching
// binary.LittleEndian.PutUint64 followed by an 8-byte Write.
func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

// HashScratch holds reusable WLHash work buffers. The search hashes every
// candidate of every expansion; reusing the buffers across calls keeps the
// duplicate filter off the allocator. The zero value is ready to use and a
// scratch must not be shared between goroutines.
type HashScratch struct {
	labels []uint64 // NodeID-indexed node labels
	topo   TopoScratch
}

// wlNodeLabel computes x_v = hash(hash(v) ++ x_{u1} ++ x_{u2} ++ ...) given
// the already-computed producer labels.
func wlNodeLabel(n *Node, labels []uint64) uint64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, n.Op.Kind())
	h = fnvByte(h, 0)
	for _, d := range n.Op.OutShape() {
		h = fnvUint64(h, uint64(d))
	}
	h = fnvByte(h, byte(n.Op.DType()))
	h = fnvString(h, n.Op.AttrKey())
	for _, in := range n.Ins {
		h = fnvUint64(h, labels[in])
	}
	return h
}

// WLHash computes a Weisfeiler-Lehman-style structural hash of the graph
// (Algorithm 3, GraphHash). Two isomorphic graphs with identical operator
// payloads hash equal; the search uses this to filter duplicate M-States.
//
// Following the paper, each node's label is
//
//	x_v = hash(hash(v) ++ x_{u1} ++ x_{u2} ++ ...)
//
// computed in topological order over the ordered input list (input order is
// semantically significant for non-commutative ops), and the graph hash is
// hash(sum_v x_v), which is invariant to node-ID renaming.
func (g *Graph) WLHash() uint64 { return g.WLHashScratch(nil) }

// WLHashScratch is WLHash with caller-owned work buffers; pass nil to
// allocate fresh ones.
func (g *Graph) WLHashScratch(sc *HashScratch) uint64 {
	if sc == nil {
		sc = &HashScratch{}
	}
	if cap(sc.labels) < len(g.nodes) {
		sc.labels = make([]uint64, len(g.nodes))
	}
	labels := sc.labels[:len(g.nodes)]
	order, err := g.TopoInto(&sc.topo)
	if err != nil {
		panic(err.Error())
	}
	var sum uint64
	for _, v := range order {
		h := wlNodeLabel(g.nodes[v], labels)
		labels[v] = h
		sum += h
	}
	return fnvUint64(fnvOffset64, sum)
}

// WLLabels is an immutable snapshot of the per-node WL labels of one graph,
// the substrate for incremental re-hashing: a child graph produced by a
// localized rewrite reuses every label whose defining cone is untouched.
// Safe for concurrent reads.
type WLLabels struct {
	g      *Graph   // the graph the labels describe
	labels []uint64 // NodeID-indexed
	hash   uint64
}

// Hash returns the graph hash the snapshot was taken at.
func (w *WLLabels) Hash() uint64 { return w.hash }

// WLSnapshot computes the graph hash and captures the per-node labels for
// later incremental re-hashing of derived graphs.
func (g *Graph) WLSnapshot(sc *HashScratch) *WLLabels {
	if sc == nil {
		sc = &HashScratch{}
	}
	labels := make([]uint64, len(g.nodes))
	order, err := g.TopoInto(&sc.topo)
	if err != nil {
		panic(err.Error())
	}
	var sum uint64
	for _, v := range order {
		h := wlNodeLabel(g.nodes[v], labels)
		labels[v] = h
		sum += h
	}
	return &WLLabels{g: g, labels: labels, hash: fnvUint64(fnvOffset64, sum)}
}

// WLHashFrom computes g's WL hash by splicing into a parent snapshot: a
// node's label is reused when the node exists in the parent graph with the
// same operator payload and input list and every producer's label was
// itself reused. The check is self-verifying — it inspects graph structure
// directly rather than trusting a mutation hint — so the result is
// bit-identical to WLHashScratch for any parent (a wrong parent only costs
// speed). Node IDs must be lineage-stable between the two graphs, which
// Clone guarantees. Pass a nil prev to fall back to the full hash.
//
// The second return is a snapshot of g's labels for further derivation;
// computing it is free because the labels are materialized anyway.
func (g *Graph) WLHashFrom(prev *WLLabels, sc *HashScratch) (uint64, *WLLabels) {
	if prev == nil || prev.g == nil {
		w := g.WLSnapshot(sc)
		return w.hash, w
	}
	if sc == nil {
		sc = &HashScratch{}
	}
	labels := make([]uint64, len(g.nodes))
	order, err := g.TopoInto(&sc.topo)
	if err != nil {
		panic(err.Error())
	}
	// clean[v]: prev.labels[v] is g's label for v. Op payloads are shared
	// pointers across clones and immutable by convention, so interface
	// equality identifies "same operator" without hashing it.
	if cap(sc.labels) < len(g.nodes) {
		sc.labels = make([]uint64, len(g.nodes))
	}
	clean := make([]bool, len(g.nodes))
	prevLabels, prevG := prev.labels, prev.g
	var sum uint64
	for _, v := range order {
		n := g.nodes[v]
		pn := prevG.Node(v)
		ok := pn != nil && pn.Op == n.Op && idsEqual(pn.Ins, n.Ins)
		if ok {
			for _, in := range n.Ins {
				if !clean[in] {
					ok = false
					break
				}
			}
		}
		var h uint64
		if ok {
			clean[v] = true
			h = prevLabels[v]
		} else {
			h = wlNodeLabel(n, labels)
		}
		labels[v] = h
		sum += h
	}
	h := fnvUint64(fnvOffset64, sum)
	return h, &WLLabels{g: g, labels: labels, hash: h}
}
