package graph

import (
	"encoding/binary"
	"hash/fnv"
)

// WLHash computes a Weisfeiler-Lehman-style structural hash of the graph
// (Algorithm 3, GraphHash). Two isomorphic graphs with identical operator
// payloads hash equal; the search uses this to filter duplicate M-States.
//
// Following the paper, each node's label is
//
//	x_v = hash(hash(v) ++ x_{u1} ++ x_{u2} ++ ...)
//
// computed in topological order over the ordered input list (input order is
// semantically significant for non-commutative ops), and the graph hash is
// hash(sum_v x_v), which is invariant to node-ID renaming.
func (g *Graph) WLHash() uint64 {
	labels := make(map[NodeID]uint64, len(g.nodes))
	var buf [8]byte
	for _, v := range g.Topo() {
		n := g.nodes[v]
		h := fnv.New64a()
		h.Write([]byte(n.Op.Kind()))
		h.Write([]byte{0})
		for _, d := range n.Op.OutShape() {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			h.Write(buf[:])
		}
		h.Write([]byte{byte(n.Op.DType())})
		h.Write([]byte(n.Op.AttrKey()))
		for _, in := range n.Ins {
			binary.LittleEndian.PutUint64(buf[:], labels[in])
			h.Write(buf[:])
		}
		labels[v] = h.Sum64()
	}
	var sum uint64
	for _, x := range labels {
		sum += x
	}
	h := fnv.New64a()
	binary.LittleEndian.PutUint64(buf[:], sum)
	h.Write(buf[:])
	return h.Sum64()
}
