package graph

// FNV-1a 64-bit constants (hash/fnv), inlined so the hot loop hashes
// without allocating a hash.Hash64 per node.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// fnvUint64 folds x in little-endian byte order, matching
// binary.LittleEndian.PutUint64 followed by an 8-byte Write.
func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

// HashScratch holds reusable WLHash work buffers. The search hashes every
// candidate of every expansion; reusing the label map across calls keeps
// the duplicate filter off the allocator. The zero value is ready to use
// and a scratch must not be shared between goroutines.
type HashScratch struct {
	labels map[NodeID]uint64
}

// WLHash computes a Weisfeiler-Lehman-style structural hash of the graph
// (Algorithm 3, GraphHash). Two isomorphic graphs with identical operator
// payloads hash equal; the search uses this to filter duplicate M-States.
//
// Following the paper, each node's label is
//
//	x_v = hash(hash(v) ++ x_{u1} ++ x_{u2} ++ ...)
//
// computed in topological order over the ordered input list (input order is
// semantically significant for non-commutative ops), and the graph hash is
// hash(sum_v x_v), which is invariant to node-ID renaming.
func (g *Graph) WLHash() uint64 { return g.WLHashScratch(nil) }

// WLHashScratch is WLHash with caller-owned work buffers; pass nil to
// allocate fresh ones.
func (g *Graph) WLHashScratch(sc *HashScratch) uint64 {
	var labels map[NodeID]uint64
	if sc != nil {
		if sc.labels == nil {
			sc.labels = make(map[NodeID]uint64, len(g.nodes))
		} else {
			clear(sc.labels)
		}
		labels = sc.labels
	} else {
		labels = make(map[NodeID]uint64, len(g.nodes))
	}
	for _, v := range g.Topo() {
		n := g.nodes[v]
		h := uint64(fnvOffset64)
		h = fnvString(h, n.Op.Kind())
		h = fnvByte(h, 0)
		for _, d := range n.Op.OutShape() {
			h = fnvUint64(h, uint64(d))
		}
		h = fnvByte(h, byte(n.Op.DType()))
		h = fnvString(h, n.Op.AttrKey())
		for _, in := range n.Ins {
			h = fnvUint64(h, labels[in])
		}
		labels[v] = h
	}
	var sum uint64
	for _, x := range labels {
		sum += x
	}
	return fnvUint64(fnvOffset64, sum)
}
