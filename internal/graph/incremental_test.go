package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"magis/internal/tensor"
)

// The incremental-maintenance oracle: every delta-maintained structure —
// WL label splicing (WLHashFrom), reachability rebasing (Rebase), and
// dominator warm-starting (DominatorsFrom) — must agree exactly with its
// from-scratch counterpart after arbitrary mutation sequences. The
// mutations below deliberately include ones no search rewrite produces
// (leaf removal, input rewiring across the whole graph) because the
// incremental paths claim self-verification: a wrong or stale "previous"
// structure may only cost speed, never correctness.

// orOp wraps testOp behind a pointer: WLHashFrom identifies "same
// operator" by interface equality, relying on the production invariant
// that Op payloads are shared pointers (*ops.Spec) across clones.
func orOp(kind string, dims ...int) Op {
	o := testOp{kind, tensor.S(dims...)}
	return &o
}

// oracleDAG builds a random layered DAG using pointer-shaped payloads.
func oracleDAG(r *rand.Rand, n int) *Graph {
	g := New()
	var ids []NodeID
	for i := 0; i < n; i++ {
		if len(ids) == 0 || r.Intn(5) == 0 {
			ids = append(ids, g.Add(orOp("In", 1+r.Intn(8))))
			continue
		}
		k := 1 + r.Intn(2)
		ins := make([]NodeID, 0, k)
		for j := 0; j < k; j++ {
			ins = append(ins, ids[r.Intn(len(ids))])
		}
		ids = append(ids, g.Add(orOp(fmt.Sprintf("Op%d", r.Intn(4)), 1+r.Intn(8)), ins...))
	}
	return g
}

// mutate applies one random structural edit to g, preserving acyclicity
// and lineage-stable IDs (survivors keep their NodeID, as Clone
// guarantees in the search). Returns false when the chosen edit was not
// applicable this round.
func mutate(r *rand.Rand, g *Graph) bool {
	order := g.Topo()
	if len(order) == 0 {
		return false
	}
	switch r.Intn(4) {
	case 0: // duplicate a node and rewire one consumer (remat-style)
		v := order[r.Intn(len(order))]
		n := g.Node(v)
		suc := g.Suc(v)
		if len(suc) == 0 {
			return false
		}
		dup := g.Add(n.Op, n.Ins...)
		g.ReplaceInput(suc[r.Intn(len(suc))], v, dup)
		return true
	case 1: // rewire an input to a topologically earlier node (no cycle)
		i := 1 + r.Intn(len(order)-1)
		v := order[i]
		n := g.Node(v)
		if len(n.Ins) == 0 {
			return false
		}
		slot := r.Intn(len(n.Ins))
		g.ReplaceInputAt(v, slot, order[r.Intn(i)])
		return true
	case 2: // remove a sink node
		for _, i := range r.Perm(len(order)) {
			v := order[i]
			if len(g.Suc(v)) == 0 && g.n > 1 {
				if err := g.Remove(v); err == nil {
					return true
				}
			}
		}
		return false
	default: // add a fresh consumer of random existing nodes
		k := 1 + r.Intn(2)
		ins := make([]NodeID, 0, k)
		for j := 0; j < k; j++ {
			ins = append(ins, order[r.Intn(len(order))])
		}
		g.Add(orOp("New", 1+r.Intn(8)), ins...)
		return true
	}
}

// checkReachEqual compares a rebased index against a fresh one over every
// node and every ordered pair.
func checkReachEqual(t *testing.T, tag string, g *Graph, got, want *ReachIndex) {
	t.Helper()
	nodes := g.Topo()
	for _, v := range nodes {
		if got.NW(v) != want.NW(v) || got.NumAnc(v) != want.NumAnc(v) || got.NumDes(v) != want.NumDes(v) {
			t.Fatalf("%s: node %d: rebased (nw=%d anc=%d des=%d) != fresh (nw=%d anc=%d des=%d)",
				tag, v, got.NW(v), got.NumAnc(v), got.NumDes(v),
				want.NW(v), want.NumAnc(v), want.NumDes(v))
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if got.IsDes(a, b) != want.IsDes(a, b) {
				t.Fatalf("%s: IsDes(%d,%d): rebased %v != fresh %v", tag, a, b, got.IsDes(a, b), want.IsDes(a, b))
			}
			if got.IsAnc(a, b) != want.IsAnc(a, b) {
				t.Fatalf("%s: IsAnc(%d,%d): rebased %v != fresh %v", tag, a, b, got.IsAnc(a, b), want.IsAnc(a, b))
			}
		}
	}
}

// checkDomEqual compares two dominator trees by their Parent maps.
func checkDomEqual(t *testing.T, tag string, got, want *DomTree) {
	t.Helper()
	if len(got.Parent) != len(want.Parent) {
		t.Fatalf("%s: dominator tree size %d != %d", tag, len(got.Parent), len(want.Parent))
	}
	for v, p := range want.Parent {
		if gp, ok := got.Parent[v]; !ok || gp != p {
			t.Fatalf("%s: idom(%d): incremental %d (present=%v) != full %d", tag, v, gp, ok, p)
		}
	}
}

// TestIncrementalOracle drives randomized mutation sequences and asserts,
// at every step, that the three incremental paths match their full
// recomputations bit-for-bit.
func TestIncrementalOracle(t *testing.T) {
	seqs := 60
	if testing.Short() {
		seqs = 15
	}
	for seq := 0; seq < seqs; seq++ {
		r := rand.New(rand.NewSource(int64(1000 + seq)))
		g := oracleDAG(r, 8+r.Intn(30))
		prevWL := g.WLSnapshot(nil)
		var staleWL *WLLabels // a grandparent snapshot, deliberately stale
		prevIdx := NewReachIndex(g)
		prevDom := Dominators(g)
		for step := 0; step < 6; step++ {
			child := g.Clone()
			if !mutate(r, child) {
				continue
			}
			tag := fmt.Sprintf("seq %d step %d", seq, step)

			// WL hash: splice from the parent snapshot == full hash.
			want := child.WLHashScratch(nil)
			got, snap := child.WLHashFrom(prevWL, nil)
			if got != want {
				t.Fatalf("%s: incremental WL hash %x != full %x", tag, got, want)
			}
			if snap.Hash() != want {
				t.Fatalf("%s: snapshot hash %x != full %x", tag, snap.Hash(), want)
			}
			// Self-verification: a stale (grandparent) snapshot must still
			// produce the same hash, only reusing fewer labels.
			if staleWL != nil {
				if h, _ := child.WLHashFrom(staleWL, nil); h != want {
					t.Fatalf("%s: WL hash from stale snapshot %x != full %x", tag, h, want)
				}
			}

			// Reachability: rebased index == fresh index (nil = declined
			// fallback, correct by construction).
			fresh := NewReachIndex(child)
			if reb := Rebase(prevIdx, g, child); reb != nil {
				checkReachEqual(t, tag, child, reb, fresh)
				prevIdx = reb // chain: next step rebases the rebased index
			} else {
				prevIdx = fresh
			}

			// Dominators: warm-started tree == full tree.
			fullDom := Dominators(child)
			checkDomEqual(t, tag, DominatorsFrom(prevDom, g, child), fullDom)

			staleWL = prevWL
			prevWL = snap
			prevDom = fullDom
			g = child
		}
	}
}

// TestWLHashFromForeignParent hands WLHashFrom a snapshot of an unrelated
// graph: node IDs collide with entirely different structure, the worst
// case for the clean check. The hash must still equal the full one.
func TestWLHashFromForeignParent(t *testing.T) {
	for seq := 0; seq < 20; seq++ {
		r := rand.New(rand.NewSource(int64(7000 + seq)))
		a := oracleDAG(r, 5+r.Intn(20))
		b := oracleDAG(r, 5+r.Intn(20))
		foreign := a.WLSnapshot(nil)
		want := b.WLHashScratch(nil)
		if got, _ := b.WLHashFrom(foreign, nil); got != want {
			t.Fatalf("seq %d: WL hash from foreign snapshot %x != full %x", seq, got, want)
		}
	}
}
