package graph

import (
	"testing"

	"magis/internal/tensor"
)

// testOp is a minimal Op for graph-level tests.
type testOp struct {
	kind  string
	shape tensor.Shape
}

func (t testOp) Kind() string           { return t.kind }
func (t testOp) OutShape() tensor.Shape { return t.shape }
func (t testOp) DType() tensor.DType    { return tensor.F32 }
func (t testOp) AttrKey() string        { return "" }

func op(kind string, dims ...int) Op { return testOp{kind, tensor.S(dims...)} }

// diamond builds a -> {b, c} -> d.
func diamond() (*Graph, [4]NodeID) {
	g := New()
	a := g.Add(op("In", 4))
	b := g.Add(op("B", 4), a)
	c := g.Add(op("C", 4), a)
	d := g.Add(op("D", 4), b, c)
	return g, [4]NodeID{a, b, c, d}
}

func TestAddAndAdjacency(t *testing.T) {
	g, n := diamond()
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if got := g.Pre(n[3]); len(got) != 2 || got[0] != n[1] || got[1] != n[2] {
		t.Errorf("Pre(d) = %v", got)
	}
	if got := g.Suc(n[0]); len(got) != 2 || got[0] != n[1] || got[1] != n[2] {
		t.Errorf("Suc(a) = %v", got)
	}
	if got := g.Inputs(); len(got) != 1 || got[0] != n[0] {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != n[3] {
		t.Errorf("Outputs = %v", got)
	}
}

func TestTopoRespectsDependencies(t *testing.T) {
	g, _ := diamond()
	order := g.Topo()
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range g.NodeIDs() {
		for _, p := range g.Pre(v) {
			if pos[p] >= pos[v] {
				t.Errorf("node %d scheduled before its producer %d", v, p)
			}
		}
	}
}

func TestRemoveRules(t *testing.T) {
	g, n := diamond()
	if err := g.Remove(n[1]); err == nil {
		t.Error("Remove of consumed node should fail")
	}
	if err := g.Remove(n[3]); err != nil {
		t.Errorf("Remove(d): %v", err)
	}
	if err := g.Remove(n[1]); err != nil {
		t.Errorf("Remove(b) after d gone: %v", err)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestReplaceInputAndRedirect(t *testing.T) {
	g, n := diamond()
	e := g.Add(op("E", 4), n[0])
	g.ReplaceInput(n[3], n[1], e)
	if got := g.Pre(n[3]); len(got) != 2 || got[0] != n[2] || got[1] != e {
		t.Errorf("Pre(d) after replace = %v", got)
	}
	if len(g.Suc(n[1])) != 0 {
		t.Errorf("b should have no consumers, got %v", g.Suc(n[1]))
	}
	g.RedirectConsumers(n[0], e, e) // everything but e itself moves to e
	if got := g.Suc(n[0]); len(got) != 1 || got[0] != e {
		t.Errorf("Suc(a) after redirect = %v", got)
	}
}

func TestDuplicateInputEdges(t *testing.T) {
	g := New()
	a := g.Add(op("In", 2))
	m := g.Add(op("Mul", 2), a, a) // a used twice
	if got := g.Pre(m); len(got) != 1 {
		t.Errorf("Pre should dedupe, got %v", got)
	}
	b := g.Add(op("In", 2))
	g.ReplaceInput(m, a, b)
	if got := g.Node(m).Ins; got[0] != b || got[1] != b {
		t.Errorf("both slots should be rewired, got %v", got)
	}
	if len(g.Suc(a)) != 0 {
		t.Errorf("a should be unconsumed, got %v", g.Suc(a))
	}
}

func TestAncDes(t *testing.T) {
	g, n := diamond()
	anc := g.Anc(n[3])
	if len(anc) != 3 || !anc[n[0]] || !anc[n[1]] || !anc[n[2]] {
		t.Errorf("Anc(d) = %v", anc)
	}
	des := g.Des(n[0])
	if len(des) != 3 {
		t.Errorf("Des(a) = %v", des)
	}
	if len(g.Anc(n[0])) != 0 || len(g.Des(n[3])) != 0 {
		t.Error("root/leaf closures should be empty")
	}
}

func TestInpsOuts(t *testing.T) {
	g, n := diamond()
	s := NewSet(n[1], n[2])
	inps := g.Inps(s)
	if len(inps) != 1 || !inps[n[0]] {
		t.Errorf("Inps = %v", inps)
	}
	outs := g.Outs(s)
	if len(outs) != 2 || !outs[n[1]] || !outs[n[2]] {
		t.Errorf("Outs = %v", outs)
	}
	// Whole-graph outputs count as outs even without external consumers.
	all := NewSet(n[0], n[1], n[2], n[3])
	outs = g.Outs(all)
	if len(outs) != 1 || !outs[n[3]] {
		t.Errorf("Outs(all) = %v", outs)
	}
}

func TestConvexity(t *testing.T) {
	// a -> b -> c -> d and a -> d: {a, c} is not convex (path a->b->c leaves
	// and re-enters via b? actually {a,c}: a's path to c goes through b
	// outside the set).
	g := New()
	a := g.Add(op("In", 1))
	b := g.Add(op("B", 1), a)
	c := g.Add(op("C", 1), b)
	d := g.Add(op("D", 1), c, a)
	if !g.IsConvex(NewSet(b, c)) {
		t.Error("{b,c} should be convex")
	}
	if g.IsConvex(NewSet(a, c)) {
		t.Error("{a,c} should not be convex (b in between)")
	}
	if !g.IsConvex(NewSet(a, b, c, d)) {
		t.Error("whole graph is convex")
	}
}

func TestWeakConnectivityAndComponents(t *testing.T) {
	g, n := diamond()
	if !g.IsWeaklyConnected(NewSet(n[1], n[2], n[3])) {
		t.Error("{b,c,d} weakly connected via d")
	}
	if g.IsWeaklyConnected(NewSet(n[1], n[2])) {
		t.Error("{b,c} not connected without a or d")
	}
	comps := g.Components(NewSet(n[1], n[2]))
	if len(comps) != 2 {
		t.Errorf("Components = %v", comps)
	}
}

func TestSubgraphExtraction(t *testing.T) {
	g, n := diamond()
	sub := g.Subgraph(NewSet(n[1], n[3]))
	if sub.Len() != 2 {
		t.Fatalf("sub.Len = %d", sub.Len())
	}
	if got := sub.Pre(n[3]); len(got) != 1 || got[0] != n[1] {
		t.Errorf("sub Pre(d) = %v", got)
	}
	if got := sub.Inputs(); len(got) != 1 || got[0] != n[1] {
		t.Errorf("sub Inputs = %v", got)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, n := diamond()
	dt := Dominators(g)
	if dt.Parent[n[0]] != Invalid {
		t.Errorf("idom(a) = %d", dt.Parent[n[0]])
	}
	if dt.Parent[n[1]] != n[0] || dt.Parent[n[2]] != n[0] {
		t.Error("b and c should be dominated by a")
	}
	if dt.Parent[n[3]] != n[0] {
		t.Errorf("idom(d) = %d, want a (branches merge)", dt.Parent[n[3]])
	}
	des := dt.Des(n[0])
	if len(des) != 3 {
		t.Errorf("Des(a) in tree = %v", des)
	}
}

func TestDominatorsMultiEntry(t *testing.T) {
	// Two independent entries feeding one op: neither dominates the sink.
	g := New()
	x := g.Add(op("In", 1))
	w := g.Add(op("Param", 1))
	m := g.Add(op("Mul", 1), x, w)
	dt := Dominators(g)
	if dt.Parent[m] != Invalid {
		t.Errorf("idom(m) = %d, want virtual root", dt.Parent[m])
	}
	if dt.Parent[x] != Invalid || dt.Parent[w] != Invalid {
		t.Error("entries hang off the virtual root")
	}
}

func TestDominatorsChain(t *testing.T) {
	g := New()
	a := g.Add(op("In", 1))
	b := g.Add(op("B", 1), a)
	c := g.Add(op("C", 1), b)
	dt := Dominators(g)
	if dt.Parent[c] != b || dt.Parent[b] != a {
		t.Errorf("chain dominators wrong: %v", dt.Parent)
	}
}

func TestReachIndexNW(t *testing.T) {
	g, n := diamond()
	r := NewReachIndex(g)
	// b: anc {a}, des {d} -> nw = 4-1-1-1 = 1 (c is independent).
	if got := r.NW(n[1]); got != 1 {
		t.Errorf("NW(b) = %d, want 1", got)
	}
	// a: anc {}, des {b,c,d} -> nw = 0.
	if got := r.NW(n[0]); got != 0 {
		t.Errorf("NW(a) = %d, want 0", got)
	}
	if r.NumAnc(n[3]) != 3 || r.NumDes(n[0]) != 3 {
		t.Error("reach counts wrong")
	}
}

func TestWLHashIsomorphismAndDifference(t *testing.T) {
	g1, _ := diamond()
	// Same structure built in a different insertion order.
	g2 := New()
	a := g2.Add(op("In", 4))
	c := g2.Add(op("C", 4), a)
	b := g2.Add(op("B", 4), a)
	_ = g2.Add(op("D", 4), b, c)
	if g1.WLHash() != g2.WLHash() {
		t.Error("isomorphic graphs should hash equal")
	}
	g3, n := diamond()
	g3.SetOp(n[1], op("B", 8)) // change a shape
	if g1.WLHash() == g3.WLHash() {
		t.Error("different shapes should hash differently")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, n := diamond()
	c := g.Clone()
	e := c.Add(op("E", 4), n[3])
	if g.Has(e) {
		t.Error("adding to clone must not affect original")
	}
	c.ReplaceInput(n[3], n[1], n[2])
	if got := g.Node(n[3]).Ins; got[0] != n[1] {
		t.Error("clone mutation leaked into original")
	}
	if g.WLHash() == c.WLHash() {
		t.Error("mutated clone should hash differently")
	}
}

func TestRemoveDead(t *testing.T) {
	g, n := diamond()
	e := g.Add(op("E", 4), n[1]) // dead branch off b
	_ = e
	removed := g.RemoveDead([]NodeID{n[3]})
	if removed != 1 || g.Has(e) {
		t.Errorf("RemoveDead removed %d, e present=%v", removed, g.Has(e))
	}
	if !g.Has(n[1]) {
		t.Error("live node removed")
	}
}

func TestTopoEDetectsCycle(t *testing.T) {
	g := New()
	x := g.Add(op("In", 1))
	a := g.Add(op("A", 1), x)
	b := g.Add(op("B", 1), a)
	// Rewire a to consume b: a <-> b cycle.
	g.ReplaceInput(a, x, b)
	if _, err := g.TopoE(); err == nil {
		t.Fatal("cycle not detected")
	}
	defer func() {
		if recover() == nil {
			t.Error("Topo should panic on cycle")
		}
	}()
	g.Topo()
}

func TestReachIndexMatchesBruteForce(t *testing.T) {
	g, n := diamond()
	e := g.Add(op("E", 4), n[3])
	r := NewReachIndex(g)
	for _, v := range g.NodeIDs() {
		if got, want := r.NumAnc(v), len(g.Anc(v)); got != want {
			t.Errorf("NumAnc(%d) = %d, want %d", v, got, want)
		}
		if got, want := r.NumDes(v), len(g.Des(v)); got != want {
			t.Errorf("NumDes(%d) = %d, want %d", v, got, want)
		}
	}
	_ = e
}

func TestSetSliceSorted(t *testing.T) {
	s := NewSet(5, 1, 3)
	got := s.Slice()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Slice = %v", got)
	}
	c := s.Clone()
	delete(c, 1)
	if !s[1] {
		t.Error("Clone shares map")
	}
}
