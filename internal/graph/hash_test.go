package graph

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"magis/internal/tensor"
)

// refWLHash is the original hash/fnv-based implementation, kept as the
// reference the allocation-free rewrite must match bit-for-bit: the
// search's duplicate filter and the cross-worker determinism tests both
// compare hashes across independently computed runs.
func refWLHash(g *Graph) uint64 {
	labels := make(map[NodeID]uint64, g.Len())
	var buf [8]byte
	for _, v := range g.Topo() {
		n := g.Node(v)
		h := fnv.New64a()
		h.Write([]byte(n.Op.Kind()))
		h.Write([]byte{0})
		for _, d := range n.Op.OutShape() {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			h.Write(buf[:])
		}
		h.Write([]byte{byte(n.Op.DType())})
		h.Write([]byte(n.Op.AttrKey()))
		for _, in := range n.Ins {
			binary.LittleEndian.PutUint64(buf[:], labels[in])
			h.Write(buf[:])
		}
		labels[v] = h.Sum64()
	}
	var sum uint64
	for _, x := range labels {
		sum += x
	}
	h := fnv.New64a()
	binary.LittleEndian.PutUint64(buf[:], sum)
	h.Write(buf[:])
	return h.Sum64()
}

// attrOp is a testOp with a non-empty AttrKey, exercising the attribute
// bytes of the hash.
type attrOp struct {
	testOp
	attr string
}

func (a attrOp) AttrKey() string { return a.attr }

func hashTestGraph() *Graph {
	g := New()
	a := g.Add(testOp{kind: "Input", shape: tensor.S(4, 8)})
	b := g.Add(testOp{kind: "Input", shape: tensor.S(8, 2)})
	c := g.Add(attrOp{testOp{"Matmul", tensor.S(4, 2)}, "tn"}, a, b)
	g.Add(testOp{kind: "Relu", shape: tensor.S(4, 2)}, c)
	g.Add(testOp{kind: "Add", shape: tensor.S(4, 2)}, c, c)
	return g
}

func TestWLHashMatchesReference(t *testing.T) {
	g := hashTestGraph()
	want := refWLHash(g)
	if got := g.WLHash(); got != want {
		t.Errorf("WLHash = %#x, reference = %#x", got, want)
	}
	var sc HashScratch
	for i := 0; i < 3; i++ { // scratch reuse must not change the value
		if got := g.WLHashScratch(&sc); got != want {
			t.Errorf("WLHashScratch pass %d = %#x, reference = %#x", i, got, want)
		}
	}
}

func TestWLHashScratchIndependentGraphs(t *testing.T) {
	g1 := hashTestGraph()
	g2 := hashTestGraph()
	g2.Add(testOp{kind: "Relu", shape: tensor.S(4, 2)}, NodeID(2))
	var sc HashScratch
	h1 := g1.WLHashScratch(&sc)
	h2 := g2.WLHashScratch(&sc)
	if h1 == h2 {
		t.Error("different graphs hashed equal through a shared scratch")
	}
	if g1.WLHashScratch(&sc) != h1 {
		t.Error("hash changed after scratch was reused for another graph")
	}
}
