package graph_test

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/sched"
)

// fuzzWorkloads returns the small training graphs the fuzzer mutates. A
// fresh copy is built per invocation because mutations destroy the graph.
func fuzzWorkloads() []*graph.Graph {
	return []*graph.Graph{
		models.MLP(64, 16, 32, 4, 2).G,
		models.ResNet50Config(1, 32, []int{1, 1}).G,
	}
}

// FuzzValidate drives byte-programs of graph and schedule mutations against
// graph.Validate and sched.Schedule.Validate. The properties under test:
// neither validator ever panics, an unmutated workload graph passes both,
// and any schedule corruption (drop, duplicate, swap) is flagged.
//
// Each byte pair is one instruction: opcode (mod 6) + operand. Graph
// mutations go through the public API only, which preserves structural
// invariants — so graph.Validate must keep passing; schedule mutations
// break the order, so Schedule.Validate must start failing.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 7})          // schedule swaps
	f.Add([]byte{2, 0, 3, 9, 4, 5})    // drop + duplicate + graph remove
	f.Add([]byte{1, 250, 5, 13, 0, 1}) // truncate + redirect + swap
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		for wi, g := range fuzzWorkloads() {
			g = g.Clone()
			order := sched.Schedule(g.Topo())
			schedMutated := false
			for i := 0; i+1 < len(data); i += 2 {
				op, arg := data[i]%6, int(data[i+1])
				switch op {
				case 0: // swap two schedule slots
					if n := len(order); n >= 2 {
						a, b := arg%n, (arg*7+3)%n
						if a != b {
							order[a], order[b] = order[b], order[a]
							schedMutated = true
						}
					}
				case 1: // truncate the schedule
					if n := len(order); n > 0 {
						order = order[:arg%n]
						schedMutated = true
					}
				case 2: // duplicate one schedule entry
					if n := len(order); n > 0 {
						order = append(order, order[arg%n])
						schedMutated = true
					}
				case 3: // duplicate a node (remat-style, API-level)
					ids := g.NodeIDs()
					if len(ids) == 0 {
						continue
					}
					src := g.Node(ids[arg%len(ids)])
					g.AddNamed(src.Name+"'", src.Op, src.Ins...)
					order = sched.Schedule(g.Topo())
					schedMutated = false
				case 4: // remove a sink node, if any
					outs := g.Outputs()
					if len(outs) > 0 {
						if err := g.Remove(outs[arg%len(outs)]); err != nil {
							t.Fatalf("removing sink: %v", err)
						}
						order = sched.Schedule(g.Topo())
						schedMutated = false
					}
				case 5: // redirect one node's consumers to a same-shape peer
					ids := g.NodeIDs()
					if len(ids) == 0 {
						continue
					}
					old := ids[arg%len(ids)]
					for _, cand := range ids {
						if cand != old &&
							g.Node(cand).Op.OutShape().Equal(g.Node(old).Op.OutShape()) &&
							g.Node(cand).Op.Kind() == g.Node(old).Op.Kind() &&
							!g.Anc(cand)[old] && cand != old {
							g.RedirectConsumers(old, cand)
							order = sched.Schedule(g.Topo())
							schedMutated = false
							break
						}
					}
				}
			}
			// Public-API mutations preserve graph invariants.
			if err := graph.Validate(g); err != nil {
				t.Fatalf("workload %d: Validate after API mutations: %v", wi, err)
			}
			// Schedule.Validate must flag corrupted orders and accept fresh
			// ones — and, above all, never panic on either.
			err := order.Validate(g)
			if schedMutated && err == nil && len(order) > 0 {
				// A swap can cancel out (swapped back); only structural
				// corruptions are guaranteed to be caught.
				if len(order) != g.Len() {
					t.Fatalf("workload %d: corrupted schedule accepted", wi)
				}
			}
			if !schedMutated && err != nil {
				t.Fatalf("workload %d: fresh topo order rejected: %v", wi, err)
			}
		}
	})
}
