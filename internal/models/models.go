// Package models builds the computation graphs of the paper's evaluation
// workloads (Table 2): ResNet-50, BERT-base, ViT-base, U-Net, U-Net++,
// GPT-Neo-1.3B, and BTLM-3B, each as a full training graph (forward pass,
// cross-entropy loss, reverse-mode backward pass, SGD updates) at the
// paper's batch and shape configuration. It also provides the synthetic
// graphs used by the motivation example (Fig. 2), the incremental-
// scheduling study (random NASNet-like DNNs, §7.3), and the quickstart.
package models

import (
	"fmt"
	"strings"

	"magis/internal/autodiff"
	"magis/internal/graph"
	"magis/internal/tensor"
)

// Workload is one benchmark network: a training graph plus metadata.
type Workload struct {
	// Name is the short display name used in result tables.
	Name string
	// G is the training graph (forward + backward + updates).
	G *graph.Graph
	// Loss is the scalar loss node.
	Loss graph.NodeID
	// Batch is the configured batch size.
	Batch int
	// DType is the training datatype (tf32 or bf16, per §7.1).
	DType tensor.DType
}

// String implements fmt.Stringer.
func (w *Workload) String() string {
	return fmt.Sprintf("%s (b%d, %d nodes)", w.Name, w.Batch, w.G.Len())
}

// train appends the backward pass for loss and wraps the result.
func train(name string, g *graph.Graph, loss graph.NodeID, batch int, dt tensor.DType) *Workload {
	if _, err := autodiff.Backward(g, loss); err != nil {
		panic(fmt.Sprintf("models: %s backward: %v", name, err))
	}
	return &Workload{Name: name, G: g, Loss: loss, Batch: batch, DType: dt}
}

// Table2 instantiates the paper's seven evaluation workloads at their
// configured sizes. Scale (0,1] shrinks batch sizes proportionally for
// fast test/bench runs; use 1 for the paper configuration.
func Table2(scale float64) []*Workload {
	b := func(n int) int {
		s := int(float64(n) * scale)
		if s < 1 {
			return 1
		}
		return s
	}
	return []*Workload{
		ResNet50(b(64), 224),
		BERTBase(b(32), 512),
		ViTBase(b(64), 224, 16),
		UNet(b(32), 256),
		UNetPP(b(16), 256),
		GPTNeo13B(b(32), 512),
		BTLM3B(b(32), 512),
	}
}

// ByName builds one workload by its CLI/API name at the given batch-size
// scale factor in (0,1] (1 = the paper configuration). The recognized
// names are listed by Names.
func ByName(name string, scale float64) (*Workload, error) {
	b := func(n int) int {
		s := int(float64(n) * scale)
		if s < 1 {
			return 1
		}
		return s
	}
	switch strings.ToLower(name) {
	case "resnet", "resnet50":
		return ResNet50(b(64), 224), nil
	case "bert":
		return BERTBase(b(32), 512), nil
	case "vit":
		return ViTBase(b(64), 224, 16), nil
	case "unet":
		return UNet(b(32), 256), nil
	case "unetpp", "unet++":
		return UNetPP(b(16), 256), nil
	case "gptneo", "gpt-neo":
		return GPTNeo13B(b(32), 512), nil
	case "btlm":
		return BTLM3B(b(32), 512), nil
	case "mlp":
		return MLP(b(8192), 256, 512, 10, 4), nil
	}
	return nil, fmt.Errorf("models: unknown workload %q (want %s)", name, strings.Join(Names(), "|"))
}

// Names lists the workload names ByName recognizes, in display order.
func Names() []string {
	return []string{"resnet", "bert", "vit", "unet", "unetpp", "gptneo", "btlm", "mlp"}
}

// SmallSuite returns laptop-scale versions of the workloads (reduced
// batch, image, sequence, and depth) preserving each topology class; used
// by tests and quick benchmark runs.
func SmallSuite() []*Workload {
	return []*Workload{
		ResNet50Config(4, 64, []int{2, 2, 2, 2}),
		TransformerLM("BERT-small", 4, 64, 128, 4, 4, 1000, tensor.TF32, false),
		ViTBase(4, 64, 16),
		UNetConfig(2, 64, 16, 3),
		UNetPPConfig(2, 64, 8, 3),
	}
}
