package models

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// transformerBlock appends one pre-LN transformer block to g and returns
// the output node. x must have shape [B, T, C].
func transformerBlock(g *graph.Graph, x graph.NodeID, name string, heads int, dt tensor.DType) graph.NodeID {
	sh := g.Node(x).Op.OutShape()
	b, t, c := sh[0], sh[1], sh[2]
	xsh := tensor.S(b, t, c)
	csh := tensor.S(c)
	h := c / heads
	hsh := tensor.S(b, heads, t, h)
	ssh := tensor.S(b, heads, t, t)

	param := func(suffix string, shape tensor.Shape) graph.NodeID {
		return g.AddNamed(name+"."+suffix, ops.NewParam(shape, dt))
	}
	linear := func(in graph.NodeID, w graph.NodeID, inSh tensor.Shape, wSh tensor.Shape) graph.NodeID {
		return g.Add(ops.NewLinear(inSh, wSh, false, dt), in, w)
	}

	// Attention.
	g1 := param("ln1.g", csh)
	b1 := param("ln1.b", csh)
	ln1 := g.AddNamed(name+".ln1", ops.NewLayerNorm(xsh, csh, csh, dt), x, g1, b1)
	wq := param("wq", tensor.S(c, c))
	wk := param("wk", tensor.S(c, c))
	wv := param("wv", tensor.S(c, c))
	q := linear(ln1, wq, xsh, tensor.S(c, c))
	k := linear(ln1, wk, xsh, tensor.S(c, c))
	v := linear(ln1, wv, xsh, tensor.S(c, c))
	qh := g.Add(ops.NewSplitHeads(xsh, heads, dt), q)
	kh := g.Add(ops.NewSplitHeads(xsh, heads, dt), k)
	vh := g.Add(ops.NewSplitHeads(xsh, heads, dt), v)
	scores := g.AddNamed(name+".scores", ops.NewBatchMatmul(hsh, hsh, false, true, dt), qh, kh)
	scaled := g.Add(ops.NewScale(ssh, dt), scores)
	probs := g.AddNamed(name+".probs", ops.NewSoftmax(ssh, 4, dt), scaled)
	ctx := g.AddNamed(name+".ctx", ops.NewBatchMatmul(ssh, hsh, false, false, dt), probs, vh)
	merged := g.Add(ops.NewMergeHeads(hsh, dt), ctx)
	wo := param("wo", tensor.S(c, c))
	attnOut := linear(merged, wo, xsh, tensor.S(c, c))
	res1 := g.Add(ops.NewAdd(xsh, xsh, dt), x, attnOut)

	// MLP.
	g2 := param("ln2.g", csh)
	b2 := param("ln2.b", csh)
	ln2 := g.Add(ops.NewLayerNorm(xsh, csh, csh, dt), res1, g2, b2)
	w1 := param("mlp.w1", tensor.S(c, 4*c))
	w2 := param("mlp.w2", tensor.S(4*c, c))
	up := g.Add(ops.NewLinear(xsh, tensor.S(c, 4*c), false, dt), ln2, w1)
	act := g.Add(ops.NewGELU(tensor.S(b, t, 4*c), dt), up)
	down := g.Add(ops.NewLinear(tensor.S(b, t, 4*c), tensor.S(4*c, c), false, dt), act, w2)
	return g.Add(ops.NewAdd(xsh, xsh, dt), res1, down)
}

// TransformerLM builds a decoder/encoder-style language model training
// graph: embedding, L transformer blocks, LM head, token-level
// cross-entropy. With classify=true it instead pools to a single
// classification logit row per example (ViT-style).
func TransformerLM(name string, batch, seq, hidden, layers, heads, vocab int, dt tensor.DType, classify bool) *Workload {
	g := graph.New()
	ids := g.AddNamed("ids", ops.NewInput(tensor.S(batch, seq), dt))
	table := g.AddNamed("wte", ops.NewParam(tensor.S(vocab, hidden), dt))
	posTable := g.AddNamed("wpe", ops.NewParam(tensor.S(seq, hidden), dt))
	pos := g.AddNamed("pos", ops.NewInput(tensor.S(batch, seq), dt))
	x := g.Add(ops.NewEmbedding(tensor.S(batch, seq), tensor.S(vocab, hidden), dt), ids, table)
	pe := g.Add(ops.NewEmbedding(tensor.S(batch, seq), tensor.S(seq, hidden), dt), pos, posTable)
	xsh := tensor.S(batch, seq, hidden)
	h := g.Add(ops.NewAdd(xsh, xsh, dt), x, pe)
	for i := 0; i < layers; i++ {
		h = transformerBlock(g, h, fmt.Sprintf("blk%d", i), heads, dt)
	}
	csh := tensor.S(hidden)
	gf := g.AddNamed("lnf.g", ops.NewParam(csh, dt))
	bf := g.AddNamed("lnf.b", ops.NewParam(csh, dt))
	hn := g.Add(ops.NewLayerNorm(xsh, csh, csh, dt), h, gf, bf)

	var loss graph.NodeID
	if classify {
		// Mean-pool over the sequence, then classify.
		pooled := g.Add(ops.NewReduce("Mean", xsh, 2, dt), hn)
		wc := g.AddNamed("head", ops.NewParam(tensor.S(hidden, vocab), dt))
		logits := g.Add(ops.NewLinear(tensor.S(batch, hidden), tensor.S(hidden, vocab), false, dt), pooled, wc)
		lbl := g.AddNamed("labels", ops.NewInput(tensor.S(batch), dt))
		loss = g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(batch, vocab), tensor.S(batch), dt), logits, lbl)
	} else {
		wc := g.AddNamed("head", ops.NewParam(tensor.S(hidden, vocab), dt))
		logits := g.Add(ops.NewLinear(xsh, tensor.S(hidden, vocab), false, dt), hn, wc)
		lbl := g.AddNamed("labels", ops.NewInput(tensor.S(batch, seq), dt))
		loss = g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(batch, seq, vocab), tensor.S(batch, seq), dt), logits, lbl)
	}
	return train(name, g, loss, batch, dt)
}

// BERTBase is the Table 2 BERT-base configuration: 12 layers, hidden 768,
// 12 heads, tf32, masked-token loss over a 30522-word vocabulary.
func BERTBase(batch, seq int) *Workload {
	return TransformerLM("BERT-base", batch, seq, 768, 12, 12, 30522, tensor.TF32, false)
}

// GPTNeo13B is the Table 2 GPT-Neo-1.3B configuration: 24 layers, hidden
// 2048, 16 heads, bf16.
func GPTNeo13B(batch, seq int) *Workload {
	return TransformerLM("GPT-Neo-1.3B", batch, seq, 2048, 24, 16, 50257, tensor.BF16, false)
}

// BTLM3B is the Table 2 BTLM-3B configuration: 32 layers, hidden 2560,
// 20 heads, bf16.
func BTLM3B(batch, seq int) *Workload {
	return TransformerLM("BTLM-3B", batch, seq, 2560, 32, 20, 50257, tensor.BF16, false)
}

// ViTBase is the Table 2 ViT-base configuration: patch embedding via
// strided convolution, 12 transformer layers at hidden 768, classification
// over 1000 classes, tf32.
func ViTBase(batch, image, patch int) *Workload {
	dt := tensor.TF32
	g := graph.New()
	img := g.AddNamed("image", ops.NewInput(tensor.S(batch, 3, image, image), dt))
	wp := g.AddNamed("patch.w", ops.NewParam(tensor.S(768, 3, patch, patch), dt))
	pe := g.Add(ops.NewConv2d(tensor.S(batch, 3, image, image), tensor.S(768, 3, patch, patch), patch, 0, dt), img, wp)
	grid := image / patch
	seq := grid * grid
	// [B, 768, g, g] -> [B, 768, T] -> [B, T, 768]
	flat := g.Add(ops.NewReshape(tensor.S(batch, 768, grid, grid), tensor.S(batch, 768, seq), dt), pe)
	tok := g.Add(ops.NewTranspose(tensor.S(batch, 768, seq), []int{0, 2, 1}, dt), flat)
	posTable := g.AddNamed("pos", ops.NewParam(tensor.S(seq, 768), dt))
	posIdx := g.AddNamed("posIdx", ops.NewInput(tensor.S(batch, seq), dt))
	p := g.Add(ops.NewEmbedding(tensor.S(batch, seq), tensor.S(seq, 768), dt), posIdx, posTable)
	xsh := tensor.S(batch, seq, 768)
	h := g.Add(ops.NewAdd(xsh, xsh, dt), tok, p)
	for i := 0; i < 12; i++ {
		h = transformerBlock(g, h, fmt.Sprintf("blk%d", i), 12, dt)
	}
	csh := tensor.S(768)
	gf := g.AddNamed("lnf.g", ops.NewParam(csh, dt))
	bf := g.AddNamed("lnf.b", ops.NewParam(csh, dt))
	hn := g.Add(ops.NewLayerNorm(xsh, csh, csh, dt), h, gf, bf)
	pooled := g.Add(ops.NewReduce("Mean", xsh, 2, dt), hn)
	wc := g.AddNamed("head", ops.NewParam(tensor.S(768, 1000), dt))
	logits := g.Add(ops.NewLinear(tensor.S(batch, 768), tensor.S(768, 1000), false, dt), pooled, wc)
	lbl := g.AddNamed("labels", ops.NewInput(tensor.S(batch), dt))
	loss := g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(batch, 1000), tensor.S(batch), dt), logits, lbl)
	return train("ViT-base", g, loss, batch, dt)
}
