package models

import (
	"fmt"
	"math/rand"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// MLP builds a simple multi-layer perceptron training graph (quickstart).
func MLP(batch, in, hidden, classes, layers int) *Workload {
	dt := tensor.F32
	g := graph.New()
	x := g.AddNamed("x", ops.NewInput(tensor.S(batch, in), dt))
	h := x
	cur := in
	for i := 0; i < layers; i++ {
		w := g.AddNamed(fmt.Sprintf("w%d", i), ops.NewParam(tensor.S(cur, hidden), dt))
		h = g.Add(ops.NewLinear(tensor.S(batch, cur), tensor.S(cur, hidden), false, dt), h, w)
		b := g.AddNamed(fmt.Sprintf("b%d", i), ops.NewParam(tensor.S(hidden), dt))
		h = g.Add(ops.NewBiasAdd(tensor.S(batch, hidden), tensor.S(hidden), dt), h, b)
		h = g.Add(ops.NewReLU(tensor.S(batch, hidden), dt), h)
		cur = hidden
	}
	w := g.AddNamed("head", ops.NewParam(tensor.S(cur, classes), dt))
	logits := g.Add(ops.NewLinear(tensor.S(batch, cur), tensor.S(cur, classes), false, dt), h, w)
	lbl := g.AddNamed("labels", ops.NewInput(tensor.S(batch), dt))
	loss := g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(batch, classes), tensor.S(batch), dt), logits, lbl)
	return train("MLP", g, loss, batch, dt)
}

// SkipChain builds the Fig. 2 motivation graph: a forward chain of n
// equally sized tensors followed by a mirrored chain consuming each
// forward tensor through a long skip connection, so all n forward tensors
// are alive at the turning point. elems sets each tensor's element count.
func SkipChain(n, elems int) (*graph.Graph, graph.NodeID) {
	dt := tensor.F32
	g := graph.New()
	sh := tensor.S(elems)
	x := g.AddNamed("in", ops.NewInput(sh, dt))
	fwd := make([]graph.NodeID, n)
	h := x
	for i := 0; i < n; i++ {
		h = g.AddNamed(fmt.Sprintf("f%d", i), ops.NewGELU(sh, dt), h)
		fwd[i] = h
	}
	for i := n - 1; i >= 0; i-- {
		h = g.AddNamed(fmt.Sprintf("b%d", i), ops.NewAdd(sh, sh, dt), h, fwd[i])
	}
	return g, h
}

// RandomNASNet builds a forward-only, irregularly wired network resembling
// NASNet cells (§7.3): each cell has five internal nodes combining two
// random predecessors with random convolutional operators. The seed fully
// determines the topology.
func RandomNASNet(seed int64, cells, channels, image, batch int) *Workload {
	w := RandomNASNetRand(rand.New(rand.NewSource(seed)), cells, channels, image, batch)
	w.Name = fmt.Sprintf("NASNet-rand%d", seed)
	return w
}

// RandomNASNetRand is RandomNASNet with the random source injected instead
// of owned: deterministic harnesses (the fault-replay and memory-planner
// property tests) thread one seeded *rand.Rand through a whole batch of
// generated workloads, so the n-th graph of a run is reproducible without
// this package ever touching global math/rand state.
func RandomNASNetRand(r *rand.Rand, cells, channels, image, batch int) *Workload {
	dt := tensor.TF32
	b := &cnnBuilder{g: graph.New(), dt: dt}
	g := b.g
	img := g.AddNamed("image", ops.NewInput(tensor.S(batch, 3, image, image), dt))
	h := b.conv(img, channels, 3, 1, 1, "stem")
	prevOuts := []graph.NodeID{h}
	for c := 0; c < cells; c++ {
		pool := append([]graph.NodeID{}, prevOuts...)
		used := make(map[graph.NodeID]bool)
		for k := 0; k < 5; k++ {
			a := pool[r.Intn(len(pool))]
			bb := pool[r.Intn(len(pool))]
			var node graph.NodeID
			switch r.Intn(4) {
			case 0:
				node = b.conv(a, channels, 3, 1, 1, fmt.Sprintf("c%d.n%d", c, k))
			case 1:
				node = b.conv(a, channels, 1, 1, 0, fmt.Sprintf("c%d.n%d", c, k))
			case 2:
				sh := b.shape(a)
				node = g.Add(ops.NewAdd(sh, b.shape(bb), dt), a, bb)
				used[bb] = true
			default:
				node = g.Add(ops.NewGELU(b.shape(a), dt), a)
			}
			used[a] = true
			pool = append(pool, node)
		}
		// Cell output: concat the loose ends, project back to `channels`.
		var loose []graph.NodeID
		for _, p := range pool {
			if !used[p] {
				loose = append(loose, p)
			}
		}
		if len(loose) == 0 {
			loose = pool[len(pool)-1:]
		}
		var out graph.NodeID
		if len(loose) == 1 {
			out = loose[0]
		} else {
			shapes := make([]tensor.Shape, len(loose))
			for i, p := range loose {
				shapes[i] = b.shape(p)
			}
			cat := g.Add(ops.NewConcat(shapes, 2, dt), loose...)
			out = b.conv(cat, channels, 1, 1, 0, fmt.Sprintf("c%d.out", c))
		}
		prevOuts = []graph.NodeID{out, prevOuts[0]}
	}
	// A small head so the graph has one output.
	loss := b.classify(prevOuts[0], 10, batch)
	return &Workload{Name: "NASNet-rand", G: g, Loss: loss, Batch: batch, DType: dt}
}
