package models

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// cnnBuilder carries shared state for convolutional model construction.
type cnnBuilder struct {
	g  *graph.Graph
	dt tensor.DType
	n  int // parameter counter for unique names
}

func (b *cnnBuilder) shape(v graph.NodeID) tensor.Shape { return b.g.Node(v).Op.OutShape() }

// conv appends conv2d + batchnorm + ReLU.
func (b *cnnBuilder) conv(x graph.NodeID, outC, k, stride, pad int, name string) graph.NodeID {
	xs := b.shape(x)
	b.n++
	w := b.g.AddNamed(fmt.Sprintf("%s.w%d", name, b.n), ops.NewParam(tensor.S(outC, xs[1], k, k), b.dt))
	c := b.g.Add(ops.NewConv2d(xs, tensor.S(outC, xs[1], k, k), stride, pad, b.dt), x, w)
	gm := b.g.AddNamed(fmt.Sprintf("%s.bn%d", name, b.n), ops.NewParam(tensor.S(outC), b.dt))
	cs := b.shape(c)
	bn := b.g.Add(ops.NewBatchNorm2d(cs, tensor.S(outC), b.dt), c, gm)
	return b.g.Add(ops.NewReLU(cs, b.dt), bn)
}

// convNoAct appends conv2d + batchnorm (no activation), for residual tails.
func (b *cnnBuilder) convNoAct(x graph.NodeID, outC, k, stride, pad int, name string) graph.NodeID {
	xs := b.shape(x)
	b.n++
	w := b.g.AddNamed(fmt.Sprintf("%s.w%d", name, b.n), ops.NewParam(tensor.S(outC, xs[1], k, k), b.dt))
	c := b.g.Add(ops.NewConv2d(xs, tensor.S(outC, xs[1], k, k), stride, pad, b.dt), x, w)
	gm := b.g.AddNamed(fmt.Sprintf("%s.bn%d", name, b.n), ops.NewParam(tensor.S(outC), b.dt))
	return b.g.Add(ops.NewBatchNorm2d(b.shape(c), tensor.S(outC), b.dt), c, gm)
}

// bottleneck appends one ResNet bottleneck block.
func (b *cnnBuilder) bottleneck(x graph.NodeID, midC, outC, stride int, name string) graph.NodeID {
	inC := b.shape(x)[1]
	h := b.conv(x, midC, 1, 1, 0, name)
	h = b.conv(h, midC, 3, stride, 1, name)
	h = b.convNoAct(h, outC, 1, 1, 0, name)
	short := x
	if inC != outC || stride != 1 {
		short = b.convNoAct(x, outC, 1, stride, 0, name+".short")
	}
	hs := b.shape(h)
	sum := b.g.Add(ops.NewAdd(hs, b.shape(short), b.dt), h, short)
	return b.g.Add(ops.NewReLU(hs, b.dt), sum)
}

// classify appends global average pooling, a classifier head, and CE loss.
func (b *cnnBuilder) classify(x graph.NodeID, classes, batch int) graph.NodeID {
	xs := b.shape(x)
	p := b.g.Add(ops.NewPool2d(xs, "avg", xs[2], 1, b.dt), x)
	flat := b.g.Add(ops.NewReshape(b.shape(p), tensor.S(batch, xs[1]), b.dt), p)
	w := b.g.AddNamed("fc.w", ops.NewParam(tensor.S(xs[1], classes), b.dt))
	logits := b.g.Add(ops.NewLinear(tensor.S(batch, xs[1]), tensor.S(xs[1], classes), false, b.dt), flat, w)
	lbl := b.g.AddNamed("labels", ops.NewInput(tensor.S(batch), b.dt))
	return b.g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(batch, classes), tensor.S(batch), b.dt), logits, lbl)
}

// ResNet50 is the Table 2 configuration: image 224, tf32, bottleneck
// stages [3,4,6,3].
func ResNet50(batch, image int) *Workload {
	return ResNet50Config(batch, image, []int{3, 4, 6, 3})
}

// ResNet50Config builds a ResNet with custom stage depths (SmallSuite uses
// shallower stages).
func ResNet50Config(batch, image int, stages []int) *Workload {
	dt := tensor.TF32
	b := &cnnBuilder{g: graph.New(), dt: dt}
	img := b.g.AddNamed("image", ops.NewInput(tensor.S(batch, 3, image, image), dt))
	h := b.conv(img, 64, 7, 2, 3, "stem")
	h = b.g.Add(ops.NewPool2d(b.shape(h), "max", 3, 2, dt), h)
	mid := 64
	out := 256
	for si, blocks := range stages {
		stride := 1
		if si > 0 {
			stride = 2
		}
		for bi := 0; bi < blocks; bi++ {
			s := 1
			if bi == 0 {
				s = stride
			}
			h = b.bottleneck(h, mid, out, s, fmt.Sprintf("s%d.b%d", si, bi))
		}
		mid *= 2
		out *= 2
	}
	loss := b.classify(h, 1000, batch)
	return train("ResNet-50", b.g, loss, batch, dt)
}

// unetBlock appends the U-Net double convolution.
func (b *cnnBuilder) unetBlock(x graph.NodeID, outC int, name string) graph.NodeID {
	h := b.conv(x, outC, 3, 1, 1, name)
	return b.conv(h, outC, 3, 1, 1, name)
}

// UNet is the Table 2 configuration: image 256, base width 64, 4 levels.
func UNet(batch, image int) *Workload {
	return UNetConfig(batch, image, 64, 4)
}

// UNetConfig builds a U-Net with custom base width and depth.
func UNetConfig(batch, image, base, depth int) *Workload {
	dt := tensor.TF32
	b := &cnnBuilder{g: graph.New(), dt: dt}
	img := b.g.AddNamed("image", ops.NewInput(tensor.S(batch, 3, image, image), dt))
	// Encoder with skip outputs.
	var skips []graph.NodeID
	h := img
	ch := base
	for i := 0; i < depth; i++ {
		h = b.unetBlock(h, ch, fmt.Sprintf("enc%d", i))
		skips = append(skips, h)
		h = b.g.Add(ops.NewPool2d(b.shape(h), "max", 2, 2, dt), h)
		ch *= 2
	}
	h = b.unetBlock(h, ch, "mid")
	// Decoder with long skip connections.
	for i := depth - 1; i >= 0; i-- {
		ch /= 2
		up := b.g.Add(ops.NewUpsample2d(b.shape(h), 2, dt), h)
		skip := skips[i]
		cat := b.g.Add(ops.NewConcat([]tensor.Shape{b.shape(up), b.shape(skip)}, 2, dt), up, skip)
		h = b.unetBlock(cat, ch, fmt.Sprintf("dec%d", i))
	}
	loss := b.segmentLoss(h, 2, batch)
	return train("UNet", b.g, loss, batch, dt)
}

// segmentLoss appends a 1x1 classifier conv and per-pixel cross-entropy.
func (b *cnnBuilder) segmentLoss(x graph.NodeID, classes, batch int) graph.NodeID {
	logits := b.convNoAct(x, classes, 1, 1, 0, "head")
	ls := b.shape(logits) // [B, classes, H, W]
	perm := b.g.Add(ops.NewTranspose(ls, []int{0, 2, 3, 1}, b.dt), logits)
	lbl := b.g.AddNamed("labels", ops.NewInput(tensor.S(batch, ls[2], ls[3]), b.dt))
	return b.g.AddNamed("loss",
		ops.NewCrossEntropy(tensor.S(batch, ls[2], ls[3], classes), tensor.S(batch, ls[2], ls[3]), b.dt), perm, lbl)
}

// UNetPP is the Table 2 U-Net++ configuration: image 256, base 64, L=4.
func UNetPP(batch, image int) *Workload {
	return UNetPPConfig(batch, image, 64, 4)
}

// UNetPPConfig builds a nested U-Net++ (Zhou et al.): X[i][j] =
// Conv(Concat(X[i][0..j-1], Up(X[i+1][j-1]))), supervised at X[0][L].
func UNetPPConfig(batch, image, base, levels int) *Workload {
	dt := tensor.TF32
	b := &cnnBuilder{g: graph.New(), dt: dt}
	img := b.g.AddNamed("image", ops.NewInput(tensor.S(batch, 3, image, image), dt))
	chAt := func(i int) int { return base << i }
	// Backbone column X[i][0].
	x := make([][]graph.NodeID, levels+1)
	h := img
	for i := 0; i <= levels; i++ {
		if i > 0 {
			h = b.g.Add(ops.NewPool2d(b.shape(h), "max", 2, 2, dt), h)
		}
		h = b.unetBlock(h, chAt(i), fmt.Sprintf("x%d0", i))
		x[i] = append(x[i], h)
	}
	// Dense nested decoder.
	for j := 1; j <= levels; j++ {
		for i := 0; i+j <= levels; i++ {
			up := b.g.Add(ops.NewUpsample2d(b.shape(x[i+1][j-1]), 2, dt), x[i+1][j-1])
			parts := append([]graph.NodeID{}, x[i][:j]...)
			parts = append(parts, up)
			shapes := make([]tensor.Shape, len(parts))
			for k, p := range parts {
				shapes[k] = b.shape(p)
			}
			cat := b.g.Add(ops.NewConcat(shapes, 2, dt), parts...)
			x[i] = append(x[i], b.unetBlock(cat, chAt(i), fmt.Sprintf("x%d%d", i, j)))
		}
	}
	loss := b.segmentLoss(x[0][levels], 2, batch)
	return train("UNet++", b.g, loss, batch, dt)
}
