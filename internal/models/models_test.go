package models

import (
	"testing"

	"magis/internal/dgraph"
	"magis/internal/graph"
	"magis/internal/sched"
	"magis/internal/tensor"
)

func validWorkload(t *testing.T, w *Workload) {
	t.Helper()
	if err := sched.Schedule(w.G.Topo()).Validate(w.G); err != nil {
		t.Fatalf("%s: invalid graph: %v", w.Name, err)
	}
	if !w.G.Has(w.Loss) {
		t.Fatalf("%s: loss node missing", w.Name)
	}
	if w.G.Node(w.Loss).Op.OutShape().Rank() != 0 {
		t.Fatalf("%s: loss not scalar", w.Name)
	}
	// Training graph: every Param with a gradient path has an ApplySGD.
	sgd := 0
	params := 0
	for _, v := range w.G.NodeIDs() {
		switch w.G.Node(v).Op.Kind() {
		case "ApplySGD":
			sgd++
		case "Param":
			params++
		}
	}
	if sgd == 0 {
		t.Fatalf("%s: no SGD updates (is this a training graph?)", w.Name)
	}
	if sgd > params {
		t.Fatalf("%s: more updates (%d) than params (%d)", w.Name, sgd, params)
	}
}

func TestSmallSuiteValid(t *testing.T) {
	for _, w := range SmallSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) { validWorkload(t, w) })
	}
}

func TestMLPValid(t *testing.T) {
	w := MLP(8, 32, 64, 10, 3)
	validWorkload(t, w)
}

func TestTable2FullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale workloads in -short mode")
	}
	for _, w := range Table2(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			validWorkload(t, w)
			if w.G.Len() < 100 {
				t.Errorf("suspiciously small graph: %d nodes", w.G.Len())
			}
			// Peak memory at the default order should be in the multi-GB
			// range the paper reports as exceeding/straining 24 GB.
			peak := sched.PeakOnly(w.G, w.G.Topo())
			if peak < 1<<30 {
				t.Errorf("%s peak %d bytes — too small for the paper's regime", w.Name, peak)
			}
		})
	}
}

func TestTransformerBatchDimensionRunsEndToEnd(t *testing.T) {
	// The batch dimension must form one connected D-graph component
	// spanning attention and MLP — the property fission relies on.
	w := TransformerLM("tiny", 4, 16, 64, 2, 4, 100, tensor.TF32, false)
	validWorkload(t, w)
	d := dgraph.Build(w.G)
	var probs graph.NodeID = graph.Invalid
	for _, v := range w.G.NodeIDs() {
		if w.G.Node(v).Name == "blk0.probs" {
			probs = v
		}
	}
	if probs == graph.Invalid {
		t.Fatal("no attention probs node")
	}
	var batchComp dgraph.Component
	for _, c := range d.Components() {
		if c[dgraph.DimNode{Node: probs, Axis: 1}] {
			batchComp = c
		}
	}
	if batchComp == nil {
		t.Fatal("attention probs has no batch component")
	}
	// The component must reach the loss's reduce axis and the second
	// block's attention too.
	if !batchComp[dgraph.DimNode{Node: w.Loss, Axis: -1}] {
		t.Error("batch component does not reach the loss reduction")
	}
	n := 0
	for dn := range batchComp {
		_ = dn
		n++
	}
	if n < w.G.Len()/4 {
		t.Errorf("batch component touches only %d dims of %d nodes", n, w.G.Len())
	}
}

func TestUNetSkipsCreateLongLifetimes(t *testing.T) {
	w := UNetConfig(2, 64, 16, 3)
	prof := sched.Simulate(w.G, w.G.Topo())
	if len(prof.Hotspots) < 4 {
		t.Errorf("U-Net should have several hot tensors, got %d", len(prof.Hotspots))
	}
}

func TestUNetPPDenser(t *testing.T) {
	u := UNetConfig(2, 64, 16, 3)
	upp := UNetPPConfig(2, 64, 16, 3)
	if upp.G.Len() <= u.G.Len() {
		t.Errorf("U-Net++ (%d nodes) should be denser than U-Net (%d)", upp.G.Len(), u.G.Len())
	}
}

func TestSkipChainMotivation(t *testing.T) {
	g, _ := SkipChain(32, 8)
	prof := sched.Simulate(g, g.Topo())
	// All 32 forward tensors (plus in-flight ones) alive at the turn:
	// peak ~ 33-34 tensors of 32 bytes.
	per := int64(8 * 4)
	if prof.Peak < 32*per {
		t.Errorf("skip chain peak %d, want >= %d", prof.Peak, 32*per)
	}
}

func TestRandomNASNetDeterminismAndVariety(t *testing.T) {
	a := RandomNASNet(1, 4, 8, 16, 2)
	b := RandomNASNet(1, 4, 8, 16, 2)
	if a.G.WLHash() != b.G.WLHash() {
		t.Error("same seed must give the same graph")
	}
	c := RandomNASNet(2, 4, 8, 16, 2)
	if a.G.WLHash() == c.G.WLHash() {
		t.Error("different seeds should give different graphs")
	}
	if err := sched.Schedule(a.G.Topo()).Validate(a.G); err != nil {
		t.Fatal(err)
	}
}
