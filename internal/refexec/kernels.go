package refexec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"magis/internal/ops"
	"magis/internal/tensor"
)

// Constants mirroring the emitted-kernel semantics (internal/codegen):
// Scale multiplies by 0.125, ApplySGD uses a fixed learning rate, and the
// normalization ops share one epsilon.
const (
	scaleFactor = 0.125
	sgdLR       = 1e-4
	normEps     = 1e-5
)

// kernelFunc computes one operator's output from its input buffers.
type kernelFunc func(s *ops.Spec, ins [][]float64) ([]float64, error)

// Supported reports whether the interpreter can execute the given
// operator kind. Leaves are "supported" in the sense that Exec resolves
// them from seeded buffers rather than a kernel.
func Supported(kind string) bool {
	return ops.IsLeaf(kind) || kernels[kind] != nil
}

// EvalSpec dispatches spec to its kernel.
func EvalSpec(s *ops.Spec, ins [][]float64) ([]float64, error) {
	k := kernels[s.Kind()]
	if k == nil {
		return nil, fmt.Errorf("no reference kernel for operator %q", s.Kind())
	}
	if want := s.NumIns(); len(ins) != want {
		return nil, fmt.Errorf("%s: got %d inputs, want %d", s.Kind(), len(ins), want)
	}
	for i := range ins {
		if want := int(s.InShape(i).Elems()); len(ins[i]) != want {
			return nil, fmt.Errorf("%s: input %d has %d elements, shape needs %d", s.Kind(), i, len(ins[i]), want)
		}
	}
	return k(s, ins)
}

var kernels = map[string]kernelFunc{
	ops.KindMatmul:    evalMatmul,
	ops.KindBatchMM:   evalBatchMatmul,
	"Linear":          evalLinear,
	"LinearBwdW":      evalLinearBwdW,
	ops.KindConv2d:    evalConv2d,
	"ConvBwdData":     evalConvBwdData,
	"ConvBwdFilter":   evalConvBwdFilter,
	ops.KindPool2d:    evalPool2d,
	"PoolBwd":         evalPoolBwd,
	"Upsample2d":      evalUpsample2d,
	"UpsampleBwd":     evalUpsampleBwd,
	"ReLU":            unary(func(x float64) float64 { return math.Max(x, 0) }),
	"GELU":            unary(gelu),
	"Tanh":            unary(math.Tanh),
	"Sigmoid":         unary(sigmoid),
	"Dropout":         unary(func(x float64) float64 { return x }), // deterministic identity
	"Scale":           unary(func(x float64) float64 { return x * scaleFactor }),
	"ReLUBwd":         unaryBwd(func(x float64) float64 { return step(x) }),
	"GELUBwd":         unaryBwd(geluPrime),
	"TanhBwd":         unaryBwd(func(x float64) float64 { t := math.Tanh(x); return 1 - t*t }),
	"SigmoidBwd":      unaryBwd(func(x float64) float64 { s := sigmoid(x); return s * (1 - s) }),
	"DropoutBwd":      unaryBwd(func(float64) float64 { return 1 }),
	"ScaleBwd":        unaryBwd(func(float64) float64 { return scaleFactor }),
	"Add":             binary(func(a, b float64) float64 { return a + b }),
	"Mul":             binary(func(a, b float64) float64 { return a * b }),
	"BiasAdd":         evalBiasAdd,
	ops.KindSoftmax:   evalSoftmax,
	"SoftmaxBwd":      evalSoftmaxBwd,
	ops.KindLayerNorm: evalLayerNorm,
	"LayerNormBwdX":   evalLayerNormBwdX,
	"LayerNormBwdP":   evalLayerNormBwdP,
	"BatchNorm2d":     evalBatchNorm2d,
	"BatchNormBwdX":   evalBatchNormBwdX,
	"BatchNormBwdP":   evalBatchNormBwdP,
	ops.KindReduce:    evalReduce,
	"Broadcast":       evalBroadcast,
	"Pad":             evalPad,
	ops.KindSlice:     evalSlice,
	ops.KindConcat:    evalConcat,
	ops.KindTranspose: evalTranspose,
	ops.KindReshape:   evalCopy,
	"SplitHeads":      evalSplitHeads,
	"MergeHeads":      evalMergeHeads,
	ops.KindEmbedding: evalEmbedding,
	"EmbeddingBwd":    evalEmbeddingBwd,
	"BiasBwd":         evalBiasBwd,
	ops.KindCrossEnt:  evalCrossEntropy,
	"CrossEntropyBwd": evalCrossEntropyBwd,
	"ApplySGD":        evalApplySGD,
	// In plain execution Store/Load are the identity; the arena checker
	// routes their data through a simulated host arena instead.
	ops.KindStore: evalCopy,
	ops.KindLoad:  evalCopy,
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func step(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// gelu is the tanh approximation; geluPrime is its exact derivative, so
// gradchecks of GELUBwd against this forward are tight.
func gelu(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

func geluPrime(x float64) float64 {
	const c = 0.7978845608028654
	u := c * (x + 0.044715*x*x*x)
	t := math.Tanh(u)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*c*(1+3*0.044715*x*x)
}

func unary(f func(float64) float64) kernelFunc {
	return func(s *ops.Spec, ins [][]float64) ([]float64, error) {
		out := make([]float64, len(ins[0]))
		for i, v := range ins[0] {
			out[i] = f(v)
		}
		return out, nil
	}
}

// unaryBwd computes dy * f'(x) for the (saved-x, dy) input convention.
func unaryBwd(fp func(float64) float64) kernelFunc {
	return func(s *ops.Spec, ins [][]float64) ([]float64, error) {
		x, dy := ins[0], ins[1]
		out := make([]float64, len(x))
		for i := range x {
			out[i] = dy[i] * fp(x[i])
		}
		return out, nil
	}
}

func binary(f func(a, b float64) float64) kernelFunc {
	return func(s *ops.Spec, ins [][]float64) ([]float64, error) {
		a, b := ins[0], ins[1]
		out := make([]float64, len(a))
		for i := range a {
			out[i] = f(a[i], b[i])
		}
		return out, nil
	}
}

func evalCopy(s *ops.Spec, ins [][]float64) ([]float64, error) {
	return append([]float64(nil), ins[0]...), nil
}

// mm computes out[m,n] = A·B with optional transposes, where A is (m,k)
// after ta and B is (k,n) after tb. The inner loop order is fixed so that
// two executions of the same contraction are bitwise identical.
func mm(out, a, b []float64, m, n, k int, ta, tb bool) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for l := 0; l < k; l++ {
				av := 0.0
				if ta {
					av = a[l*m+i]
				} else {
					av = a[i*k+l]
				}
				bv := 0.0
				if tb {
					bv = b[j*k+l]
				} else {
					bv = b[l*n+j]
				}
				acc += av * bv
			}
			out[i*n+j] = acc
		}
	}
}

func transFlags(attr string) (ta, tb bool, err error) {
	if len(attr) != 2 {
		return false, false, fmt.Errorf("bad matmul attr %q", attr)
	}
	return attr[0] == 'T', attr[1] == 'T', nil
}

func evalMatmul(s *ops.Spec, ins [][]float64) ([]float64, error) {
	ta, tb, err := transFlags(s.Attr())
	if err != nil {
		return nil, err
	}
	os := s.OutShape()
	m, n := os.Dim(1), os.Dim(2)
	as := s.InShape(0)
	k := as.Dim(2)
	if ta {
		k = as.Dim(1)
	}
	out := make([]float64, m*n)
	mm(out, ins[0], ins[1], m, n, k, ta, tb)
	return out, nil
}

func evalBatchMatmul(s *ops.Spec, ins [][]float64) ([]float64, error) {
	ta, tb, err := transFlags(s.Attr())
	if err != nil {
		return nil, err
	}
	os := s.OutShape()
	r := os.Rank()
	m, n := os.Dim(r-1), os.Dim(r)
	as := s.InShape(0)
	k := as.Dim(as.Rank())
	if ta {
		k = as.Dim(as.Rank() - 1)
	}
	batch := int(os.Elems()) / (m * n)
	out := make([]float64, os.Elems())
	for bi := 0; bi < batch; bi++ {
		mm(out[bi*m*n:(bi+1)*m*n], ins[0][bi*m*k:(bi+1)*m*k], ins[1][bi*k*n:(bi+1)*k*n], m, n, k, ta, tb)
	}
	return out, nil
}

// evalLinear flattens the leading dims of x into rows; attr "T" means the
// weight is stored [n,k] and multiplied transposed.
func evalLinear(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	k := xs.Dim(xs.Rank())
	rows := int(xs.Elems()) / k
	os := s.OutShape()
	n := os.Dim(os.Rank())
	out := make([]float64, os.Elems())
	mm(out, ins[0], ins[1], rows, n, k, false, s.Attr() == "T")
	return out, nil
}

// evalLinearBwdW accumulates dW[k,n] = Σ_rows x(row,·)ᵀ · dy(row,·).
func evalLinearBwdW(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	k := xs.Dim(xs.Rank())
	rows := int(xs.Elems()) / k
	os := s.OutShape()
	n := os.Dim(2)
	out := make([]float64, k*n)
	mm(out, ins[0], ins[1], k, n, rows, true, false)
	return out, nil
}

func convAttr(attr string) (stride, pad int, err error) {
	if _, err := fmt.Sscanf(attr, "s%dp%d", &stride, &pad); err != nil {
		return 0, 0, fmt.Errorf("bad conv attr %q: %w", attr, err)
	}
	return stride, pad, nil
}

func evalConv2d(s *ops.Spec, ins [][]float64) ([]float64, error) {
	stride, pad, err := convAttr(s.Attr())
	if err != nil {
		return nil, err
	}
	xs, ws, os := s.InShape(0), s.InShape(1), s.OutShape()
	N, C, H, W := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	K, R, S := ws.Dim(1), ws.Dim(3), ws.Dim(4)
	OH, OW := os.Dim(3), os.Dim(4)
	x, w := ins[0], ins[1]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for k := 0; k < K; k++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					var acc float64
					for c := 0; c < C; c++ {
						for r := 0; r < R; r++ {
							ih := oh*stride - pad + r
							if ih < 0 || ih >= H {
								continue
							}
							for q := 0; q < S; q++ {
								iw := ow*stride - pad + q
								if iw < 0 || iw >= W {
									continue
								}
								acc += x[((n*C+c)*H+ih)*W+iw] * w[((k*C+c)*R+r)*S+q]
							}
						}
					}
					out[((n*K+k)*OH+oh)*OW+ow] = acc
				}
			}
		}
	}
	return out, nil
}

// evalConvBwdData scatters dy through the filter: the exact transpose of
// the forward convolution.
func evalConvBwdData(s *ops.Spec, ins [][]float64) ([]float64, error) {
	stride, pad, err := convAttr(s.Attr())
	if err != nil {
		return nil, err
	}
	ds, ws, os := s.InShape(0), s.InShape(1), s.OutShape()
	N, K, OH, OW := ds.Dim(1), ds.Dim(2), ds.Dim(3), ds.Dim(4)
	C, R, S := ws.Dim(2), ws.Dim(3), ws.Dim(4)
	H, W := os.Dim(3), os.Dim(4)
	dy, w := ins[0], ins[1]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for k := 0; k < K; k++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					g := dy[((n*K+k)*OH+oh)*OW+ow]
					for c := 0; c < C; c++ {
						for r := 0; r < R; r++ {
							ih := oh*stride - pad + r
							if ih < 0 || ih >= H {
								continue
							}
							for q := 0; q < S; q++ {
								iw := ow*stride - pad + q
								if iw < 0 || iw >= W {
									continue
								}
								out[((n*C+c)*H+ih)*W+iw] += g * w[((k*C+c)*R+r)*S+q]
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

func evalConvBwdFilter(s *ops.Spec, ins [][]float64) ([]float64, error) {
	stride, pad, err := convAttr(s.Attr())
	if err != nil {
		return nil, err
	}
	xs, ds, os := s.InShape(0), s.InShape(1), s.OutShape()
	N, C, H, W := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	K, OH, OW := ds.Dim(2), ds.Dim(3), ds.Dim(4)
	R, S := os.Dim(3), os.Dim(4)
	x, dy := ins[0], ins[1]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for k := 0; k < K; k++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					g := dy[((n*K+k)*OH+oh)*OW+ow]
					for c := 0; c < C; c++ {
						for r := 0; r < R; r++ {
							ih := oh*stride - pad + r
							if ih < 0 || ih >= H {
								continue
							}
							for q := 0; q < S; q++ {
								iw := ow*stride - pad + q
								if iw < 0 || iw >= W {
									continue
								}
								out[((k*C+c)*R+r)*S+q] += g * x[((n*C+c)*H+ih)*W+iw]
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

func poolAttr(attr string) (kind string, k, stride int, err error) {
	parts := strings.SplitN(attr, ",", 2)
	if len(parts) != 2 {
		return "", 0, 0, fmt.Errorf("bad pool attr %q", attr)
	}
	if _, err := fmt.Sscanf(parts[1], "k%ds%d", &k, &stride); err != nil {
		return "", 0, 0, fmt.Errorf("bad pool attr %q: %w", attr, err)
	}
	return parts[0], k, stride, nil
}

func evalPool2d(s *ops.Spec, ins [][]float64) ([]float64, error) {
	kind, kk, stride, err := poolAttr(s.Attr())
	if err != nil {
		return nil, err
	}
	xs, os := s.InShape(0), s.OutShape()
	N, C, H, W := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	OH, OW := os.Dim(3), os.Dim(4)
	x := ins[0]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					acc := math.Inf(-1)
					if kind == "avg" {
						acc = 0
					}
					for r := 0; r < kk; r++ {
						for q := 0; q < kk; q++ {
							ih, iw := oh*stride+r, ow*stride+q
							if ih >= H || iw >= W {
								continue
							}
							v := x[((n*C+c)*H+ih)*W+iw]
							if kind == "avg" {
								acc += v
							} else if v > acc {
								acc = v
							}
						}
					}
					if kind == "avg" {
						acc /= float64(kk * kk)
					}
					out[((n*C+c)*OH+oh)*OW+ow] = acc
				}
			}
		}
	}
	return out, nil
}

// evalPoolBwd routes dy to the window's argmax (first maximum wins) for
// max pooling, or spreads it uniformly for average pooling.
func evalPoolBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	kind, kk, stride, err := poolAttr(s.Attr())
	if err != nil {
		return nil, err
	}
	xs, ds := s.InShape(0), s.InShape(1)
	N, C, H, W := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	OH, OW := ds.Dim(3), ds.Dim(4)
	x, dy := ins[0], ins[1]
	out := make([]float64, xs.Elems())
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					g := dy[((n*C+c)*OH+oh)*OW+ow]
					if kind == "avg" {
						share := g / float64(kk*kk)
						for r := 0; r < kk; r++ {
							for q := 0; q < kk; q++ {
								ih, iw := oh*stride+r, ow*stride+q
								if ih >= H || iw >= W {
									continue
								}
								out[((n*C+c)*H+ih)*W+iw] += share
							}
						}
						continue
					}
					best, bi := math.Inf(-1), -1
					for r := 0; r < kk; r++ {
						for q := 0; q < kk; q++ {
							ih, iw := oh*stride+r, ow*stride+q
							if ih >= H || iw >= W {
								continue
							}
							if v := x[((n*C+c)*H+ih)*W+iw]; v > best {
								best, bi = v, ((n*C+c)*H+ih)*W+iw
							}
						}
					}
					if bi >= 0 {
						out[bi] += g
					}
				}
			}
		}
	}
	return out, nil
}

func evalUpsample2d(s *ops.Spec, ins [][]float64) ([]float64, error) {
	var f int
	if _, err := fmt.Sscanf(s.Attr(), "f%d", &f); err != nil {
		return nil, fmt.Errorf("bad upsample attr %q: %w", s.Attr(), err)
	}
	xs, os := s.InShape(0), s.OutShape()
	N, C, H, W := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	OH, OW := os.Dim(3), os.Dim(4)
	x := ins[0]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					ih, iw := oh/f, ow/f
					if ih >= H {
						ih = H - 1
					}
					if iw >= W {
						iw = W - 1
					}
					out[((n*C+c)*OH+oh)*OW+ow] = x[((n*C+c)*H+ih)*W+iw]
				}
			}
		}
	}
	return out, nil
}

// evalUpsampleBwd sums each f×f patch of dy back into its source cell —
// the exact adjoint of nearest-neighbor upsampling.
func evalUpsampleBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	var f int
	if _, err := fmt.Sscanf(s.Attr(), "f%d", &f); err != nil {
		return nil, fmt.Errorf("bad upsample attr %q: %w", s.Attr(), err)
	}
	ds, os := s.InShape(0), s.OutShape()
	N, C, OH, OW := ds.Dim(1), ds.Dim(2), ds.Dim(3), ds.Dim(4)
	H, W := os.Dim(3), os.Dim(4)
	dy := ins[0]
	out := make([]float64, os.Elems())
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					ih, iw := oh/f, ow/f
					if ih >= H {
						ih = H - 1
					}
					if iw >= W {
						iw = W - 1
					}
					out[((n*C+c)*H+ih)*W+iw] += dy[((n*C+c)*OH+oh)*OW+ow]
				}
			}
		}
	}
	return out, nil
}

func evalBiasAdd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	x, b := ins[0], ins[1]
	c := len(b)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + b[i%c]
	}
	return out, nil
}

// axisSplit decomposes a shape around a 1-based axis into (outer, length,
// inner) strides for axis-wise iteration.
func axisSplit(sh tensor.Shape, axis int) (outer, length, inner int) {
	outer, length, inner = 1, sh.Dim(axis), 1
	for d := 1; d < axis; d++ {
		outer *= sh.Dim(d)
	}
	for d := axis + 1; d <= sh.Rank(); d++ {
		inner *= sh.Dim(d)
	}
	return outer, length, inner
}

func softmaxAxis(s *ops.Spec) (int, error) {
	var a int
	if _, err := fmt.Sscanf(s.Attr(), "a%d", &a); err != nil {
		return 0, fmt.Errorf("bad softmax attr %q: %w", s.Attr(), err)
	}
	return a, nil
}

func evalSoftmax(s *ops.Spec, ins [][]float64) ([]float64, error) {
	axis, err := softmaxAxis(s)
	if err != nil {
		return nil, err
	}
	outer, l, inner := axisSplit(s.InShape(0), axis)
	x := ins[0]
	out := make([]float64, len(x))
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			max := math.Inf(-1)
			for j := 0; j < l; j++ {
				if v := x[(o*l+j)*inner+i]; v > max {
					max = v
				}
			}
			var sum float64
			for j := 0; j < l; j++ {
				e := math.Exp(x[(o*l+j)*inner+i] - max)
				out[(o*l+j)*inner+i] = e
				sum += e
			}
			for j := 0; j < l; j++ {
				out[(o*l+j)*inner+i] /= sum
			}
		}
	}
	return out, nil
}

// evalSoftmaxBwd computes dx = y ⊙ (dy - Σ_axis dy·y), the exact softmax
// jacobian-vector product given the forward output y.
func evalSoftmaxBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	axis, err := softmaxAxis(s)
	if err != nil {
		return nil, err
	}
	outer, l, inner := axisSplit(s.InShape(0), axis)
	y, dy := ins[0], ins[1]
	out := make([]float64, len(y))
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			var dot float64
			for j := 0; j < l; j++ {
				idx := (o*l+j)*inner + i
				dot += dy[idx] * y[idx]
			}
			for j := 0; j < l; j++ {
				idx := (o*l+j)*inner + i
				out[idx] = y[idx] * (dy[idx] - dot)
			}
		}
	}
	return out, nil
}

// rowStats returns the biased mean and variance of one length-c row.
func rowStats(x []float64) (mean, variance float64) {
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(x))
	return mean, variance
}

func evalLayerNorm(s *ops.Spec, ins [][]float64) ([]float64, error) {
	x, gamma, beta := ins[0], ins[1], ins[2]
	c := len(gamma)
	out := make([]float64, len(x))
	for r := 0; r*c < len(x); r++ {
		row := x[r*c : (r+1)*c]
		mean, variance := rowStats(row)
		inv := 1 / math.Sqrt(variance+normEps)
		for j := 0; j < c; j++ {
			out[r*c+j] = (row[j]-mean)*inv*gamma[j] + beta[j]
		}
	}
	return out, nil
}

// evalLayerNormBwdX is the exact input gradient:
// dx = (g - mean(g) - x̂·mean(g·x̂)) / sqrt(σ²+ε) with g = dy·γ.
func evalLayerNormBwdX(s *ops.Spec, ins [][]float64) ([]float64, error) {
	x, dy, gamma := ins[0], ins[1], ins[2]
	c := len(gamma)
	out := make([]float64, len(x))
	g := make([]float64, c)
	for r := 0; r*c < len(x); r++ {
		row := x[r*c : (r+1)*c]
		mean, variance := rowStats(row)
		inv := 1 / math.Sqrt(variance+normEps)
		var gMean, gxMean float64
		for j := 0; j < c; j++ {
			g[j] = dy[r*c+j] * gamma[j]
			gMean += g[j]
			gxMean += g[j] * (row[j] - mean) * inv
		}
		gMean /= float64(c)
		gxMean /= float64(c)
		for j := 0; j < c; j++ {
			xhat := (row[j] - mean) * inv
			out[r*c+j] = (g[j] - gMean - xhat*gxMean) * inv
		}
	}
	return out, nil
}

// evalLayerNormBwdP is dγ: Σ_rows dy·x̂ (dβ is emitted as BiasBwd).
func evalLayerNormBwdP(s *ops.Spec, ins [][]float64) ([]float64, error) {
	x, dy := ins[0], ins[1]
	c := s.OutShape().Dim(1)
	out := make([]float64, c)
	for r := 0; r*c < len(x); r++ {
		row := x[r*c : (r+1)*c]
		mean, variance := rowStats(row)
		inv := 1 / math.Sqrt(variance+normEps)
		for j := 0; j < c; j++ {
			out[j] += dy[r*c+j] * (row[j] - mean) * inv
		}
	}
	return out, nil
}

// channelStats returns per-channel mean and biased variance over N,H,W.
func channelStats(x []float64, n, c, hw int) (mean, variance []float64) {
	mean = make([]float64, c)
	variance = make([]float64, c)
	cnt := float64(n * hw)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				mean[ci] += x[base+i]
			}
		}
	}
	for ci := range mean {
		mean[ci] /= cnt
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				d := x[base+i] - mean[ci]
				variance[ci] += d * d
			}
		}
	}
	for ci := range variance {
		variance[ci] /= cnt
	}
	return mean, variance
}

func evalBatchNorm2d(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	n, c, hw := xs.Dim(1), xs.Dim(2), xs.Dim(3)*xs.Dim(4)
	x, gamma := ins[0], ins[1]
	mean, variance := channelStats(x, n, c, hw)
	out := make([]float64, len(x))
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inv := gamma[ci] / math.Sqrt(variance[ci]+normEps)
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				out[base+i] = (x[base+i] - mean[ci]) * inv
			}
		}
	}
	return out, nil
}

// evalBatchNormBwdX keeps the documented surrogate dy - mean(dy) per
// channel, matching the emitted kernel rather than the exact jacobian.
func evalBatchNormBwdX(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	n, c, hw := xs.Dim(1), xs.Dim(2), xs.Dim(3)*xs.Dim(4)
	dy := ins[1]
	dyMean, _ := channelStats(dy, n, c, hw)
	out := make([]float64, len(dy))
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				out[base+i] = dy[base+i] - dyMean[ci]
			}
		}
	}
	return out, nil
}

func evalBatchNormBwdP(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	n, c, hw := xs.Dim(1), xs.Dim(2), xs.Dim(3)*xs.Dim(4)
	x, dy := ins[0], ins[1]
	mean, variance := channelStats(x, n, c, hw)
	out := make([]float64, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inv := 1 / math.Sqrt(variance[ci]+normEps)
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				out[ci] += dy[base+i] * (x[base+i] - mean[ci]) * inv
			}
		}
	}
	return out, nil
}

func evalReduce(s *ops.Spec, ins [][]float64) ([]float64, error) {
	parts := strings.SplitN(s.Attr(), ",", 2)
	var axis int
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad reduce attr %q", s.Attr())
	}
	if _, err := fmt.Sscanf(parts[1], "a%d", &axis); err != nil {
		return nil, fmt.Errorf("bad reduce attr %q: %w", s.Attr(), err)
	}
	outer, l, inner := axisSplit(s.InShape(0), axis)
	x := ins[0]
	out := make([]float64, outer*inner)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			var acc float64
			for j := 0; j < l; j++ {
				acc += x[(o*l+j)*inner+i]
			}
			if parts[0] == "Mean" {
				acc /= float64(l)
			}
			out[o*inner+i] = acc
		}
	}
	return out, nil
}

// evalBroadcast replicates x along a new axis (the emitted expand — no
// 1/n scaling, matching codegen).
func evalBroadcast(s *ops.Spec, ins [][]float64) ([]float64, error) {
	var axis, n int
	if _, err := fmt.Sscanf(s.Attr(), "a%d,n%d", &axis, &n); err != nil {
		return nil, fmt.Errorf("bad broadcast attr %q: %w", s.Attr(), err)
	}
	outer, l, inner := axisSplit(s.OutShape(), axis)
	if l != n {
		return nil, fmt.Errorf("broadcast axis %d has length %d, attr says %d", axis, l, n)
	}
	x := ins[0]
	out := make([]float64, outer*l*inner)
	for o := 0; o < outer; o++ {
		for j := 0; j < l; j++ {
			for i := 0; i < inner; i++ {
				out[(o*l+j)*inner+i] = x[o*inner+i]
			}
		}
	}
	return out, nil
}

func evalPad(s *ops.Spec, ins [][]float64) ([]float64, error) {
	var dim, start, total int
	if _, err := fmt.Sscanf(s.Attr(), "d%d,%d+%d", &dim, &start, &total); err != nil {
		return nil, fmt.Errorf("bad pad attr %q: %w", s.Attr(), err)
	}
	outer, l, inner := axisSplit(s.InShape(0), dim)
	x := ins[0]
	out := make([]float64, outer*total*inner)
	for o := 0; o < outer; o++ {
		for j := 0; j < l; j++ {
			copy(out[(o*total+start+j)*inner:(o*total+start+j)*inner+inner], x[(o*l+j)*inner:(o*l+j)*inner+inner])
		}
	}
	return out, nil
}

func evalSlice(s *ops.Spec, ins [][]float64) ([]float64, error) {
	dim, start, length, ok := ops.ParseSliceAttr(s)
	if !ok {
		return nil, fmt.Errorf("bad slice attr %q", s.Attr())
	}
	outer, l, inner := axisSplit(s.InShape(0), dim)
	x := ins[0]
	out := make([]float64, outer*length*inner)
	for o := 0; o < outer; o++ {
		for j := 0; j < length; j++ {
			copy(out[(o*length+j)*inner:(o*length+j+1)*inner], x[(o*l+start+j)*inner:(o*l+start+j)*inner+inner])
		}
	}
	return out, nil
}

func evalConcat(s *ops.Spec, ins [][]float64) ([]float64, error) {
	var dim, cnt int
	if _, err := fmt.Sscanf(s.Attr(), "d%d,n%d", &dim, &cnt); err != nil {
		return nil, fmt.Errorf("bad concat attr %q: %w", s.Attr(), err)
	}
	outer, total, inner := axisSplit(s.OutShape(), dim)
	out := make([]float64, outer*total*inner)
	off := 0
	for i, x := range ins {
		l := s.InShape(i).Dim(dim)
		for o := 0; o < outer; o++ {
			for j := 0; j < l; j++ {
				copy(out[(o*total+off+j)*inner:(o*total+off+j)*inner+inner], x[(o*l+j)*inner:(o*l+j+1)*inner])
			}
		}
		off += l
	}
	return out, nil
}

func evalTranspose(s *ops.Spec, ins [][]float64) ([]float64, error) {
	attr := strings.Trim(strings.TrimPrefix(s.Attr(), "p"), "[]")
	fields := strings.Fields(attr)
	xs, os := s.InShape(0), s.OutShape()
	r := xs.Rank()
	if len(fields) != r {
		return nil, fmt.Errorf("bad transpose attr %q for rank %d", s.Attr(), r)
	}
	perm := make([]int, r)
	for i, f := range fields {
		p, err := strconv.Atoi(f)
		if err != nil || p < 0 || p >= r {
			return nil, fmt.Errorf("bad transpose attr %q", s.Attr())
		}
		perm[i] = p
	}
	inStride := make([]int, r)
	st := 1
	for d := r - 1; d >= 0; d-- {
		inStride[d] = st
		st *= xs.Dim(d + 1)
	}
	x := ins[0]
	out := make([]float64, os.Elems())
	oidx := make([]int, r)
	for o := range out {
		// Decompose o into the output multi-index, then map through perm.
		rem := o
		for d := r - 1; d >= 0; d-- {
			oidx[d] = rem % os.Dim(d+1)
			rem /= os.Dim(d + 1)
		}
		src := 0
		for d := 0; d < r; d++ {
			src += oidx[d] * inStride[perm[d]]
		}
		out[o] = x[src]
	}
	return out, nil
}

func evalSplitHeads(s *ops.Spec, ins [][]float64) ([]float64, error) {
	os := s.OutShape()
	b, h, t, hd := os.Dim(1), os.Dim(2), os.Dim(3), os.Dim(4)
	x := ins[0]
	out := make([]float64, os.Elems())
	for bi := 0; bi < b; bi++ {
		for hi := 0; hi < h; hi++ {
			for ti := 0; ti < t; ti++ {
				for c := 0; c < hd; c++ {
					out[((bi*h+hi)*t+ti)*hd+c] = x[(bi*t+ti)*h*hd+hi*hd+c]
				}
			}
		}
	}
	return out, nil
}

func evalMergeHeads(s *ops.Spec, ins [][]float64) ([]float64, error) {
	xs := s.InShape(0)
	b, h, t, hd := xs.Dim(1), xs.Dim(2), xs.Dim(3), xs.Dim(4)
	x := ins[0]
	out := make([]float64, xs.Elems())
	for bi := 0; bi < b; bi++ {
		for hi := 0; hi < h; hi++ {
			for ti := 0; ti < t; ti++ {
				for c := 0; c < hd; c++ {
					out[(bi*t+ti)*h*hd+hi*hd+c] = x[((bi*h+hi)*t+ti)*hd+c]
				}
			}
		}
	}
	return out, nil
}

// clampIndex folds any real value into [0, bound) the way the executor
// treats index tensors: truncate, wrap negatives, map NaN to 0.
func clampIndex(v float64, bound int) int {
	if math.IsNaN(v) || bound <= 0 {
		return 0
	}
	m := math.Mod(v, float64(bound))
	if m < 0 {
		m += float64(bound)
	}
	return int(m)
}

func evalEmbedding(s *ops.Spec, ins [][]float64) ([]float64, error) {
	ids, table := ins[0], ins[1]
	ts := s.InShape(1)
	v, c := ts.Dim(1), ts.Dim(2)
	out := make([]float64, len(ids)*c)
	for i, id := range ids {
		row := clampIndex(id, v)
		copy(out[i*c:(i+1)*c], table[row*c:(row+1)*c])
	}
	return out, nil
}

func evalEmbeddingBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	ids, dy := ins[0], ins[1]
	os := s.OutShape()
	v, c := os.Dim(1), os.Dim(2)
	out := make([]float64, v*c)
	for i, id := range ids {
		row := clampIndex(id, v)
		for j := 0; j < c; j++ {
			out[row*c+j] += dy[i*c+j]
		}
	}
	return out, nil
}

func evalBiasBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	dy := ins[0]
	c := s.OutShape().Dim(1)
	out := make([]float64, c)
	for i, v := range dy {
		out[i%c] += v
	}
	return out, nil
}

func evalCrossEntropy(s *ops.Spec, ins [][]float64) ([]float64, error) {
	logits, labels := ins[0], ins[1]
	ls := s.InShape(0)
	v := ls.Dim(ls.Rank())
	rows := len(labels)
	var loss float64
	for r := 0; r < rows; r++ {
		row := logits[r*v : (r+1)*v]
		max := math.Inf(-1)
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		var sum float64
		for _, x := range row {
			sum += math.Exp(x - max)
		}
		lbl := clampIndex(labels[r], v)
		loss += max + math.Log(sum) - row[lbl]
	}
	loss /= float64(rows)
	out := make([]float64, s.OutShape().Elems())
	for i := range out {
		out[i] = loss
	}
	return out, nil
}

// evalCrossEntropyBwd is the exact gradient of the mean row loss:
// (softmax(logits) - onehot(label)) / rows.
func evalCrossEntropyBwd(s *ops.Spec, ins [][]float64) ([]float64, error) {
	logits, labels := ins[0], ins[1]
	ls := s.InShape(0)
	v := ls.Dim(ls.Rank())
	rows := len(labels)
	out := make([]float64, len(logits))
	for r := 0; r < rows; r++ {
		row := logits[r*v : (r+1)*v]
		max := math.Inf(-1)
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		var sum float64
		for _, x := range row {
			sum += math.Exp(x - max)
		}
		lbl := clampIndex(labels[r], v)
		for j := 0; j < v; j++ {
			p := math.Exp(row[j]-max) / sum
			if j == lbl {
				p -= 1
			}
			out[r*v+j] = p / float64(rows)
		}
	}
	return out, nil
}

func evalApplySGD(s *ops.Spec, ins [][]float64) ([]float64, error) {
	w, gw := ins[0], ins[1]
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i] - sgdLR*gw[i]
	}
	return out, nil
}
