package refexec_test

import (
	"math"
	"testing"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/refexec"
	"magis/internal/tensor"
)

// TestEveryKindHasKernel: the registry and the interpreter must not
// drift — an operator that can appear in a graph must be executable.
func TestEveryKindHasKernel(t *testing.T) {
	for _, k := range ops.Kinds() {
		if !refexec.Supported(k) {
			t.Errorf("operator kind %q has no reference kernel", k)
		}
	}
}

func eval(t *testing.T, s *ops.Spec, ins ...[]float64) []float64 {
	t.Helper()
	out, err := refexec.EvalSpec(s, ins)
	if err != nil {
		t.Fatalf("EvalSpec(%s): %v", s.Kind(), err)
	}
	return out
}

func wantSlice(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("elem %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

func TestKernelSpotChecks(t *testing.T) {
	dt := tensor.F32

	// [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
	mmSpec := ops.NewMatmul(tensor.S(2, 2), tensor.S(2, 2), false, false, dt)
	wantSlice(t, eval(t, mmSpec, []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}),
		[]float64{19, 22, 43, 50}, 0)

	// Transposed variants agree with the plain product.
	nt := ops.NewMatmul(tensor.S(2, 2), tensor.S(2, 2), false, true, dt)
	wantSlice(t, eval(t, nt, []float64{1, 2, 3, 4}, []float64{5, 7, 6, 8}),
		[]float64{19, 22, 43, 50}, 0)
	tn := ops.NewMatmul(tensor.S(2, 2), tensor.S(2, 2), true, false, dt)
	wantSlice(t, eval(t, tn, []float64{1, 3, 2, 4}, []float64{5, 6, 7, 8}),
		[]float64{19, 22, 43, 50}, 0)

	// 1×1×2×2 conv, 3×3 filter of ones, stride 1 pad 1 on all-ones input:
	// each output counts its in-bounds neighborhood.
	conv := ops.NewConv2d(tensor.S(1, 1, 2, 2), tensor.S(1, 1, 3, 3), 1, 1, dt)
	ones9 := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	wantSlice(t, eval(t, conv, []float64{1, 1, 1, 1}, ones9), []float64{4, 4, 4, 4}, 0)

	// Softmax rows sum to 1 and are shift-invariant.
	sm := ops.NewSoftmax(tensor.S(2, 3), 2, dt)
	out := eval(t, sm, []float64{1, 2, 3, 1001, 1002, 1003})
	for r := 0; r < 2; r++ {
		sum := out[r*3] + out[r*3+1] + out[r*3+2]
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("softmax row %d sums to %g", r, sum)
		}
	}
	if math.Abs(out[0]-out[3]) > 1e-12 {
		t.Error("softmax not shift-invariant")
	}

	// CrossEntropy of uniform logits is ln(V).
	ce := ops.NewCrossEntropy(tensor.S(2, 4), tensor.S(2), dt)
	wantSlice(t, eval(t, ce, make([]float64, 8), []float64{0, 3}),
		[]float64{math.Log(4)}, 1e-12)

	// Max pool 2×2 stride 2.
	pool := ops.NewPool2d(tensor.S(1, 1, 2, 2), "max", 2, 2, dt)
	wantSlice(t, eval(t, pool, []float64{1, 5, 2, 3}), []float64{5}, 0)

	// SplitHeads∘MergeHeads is the identity.
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	sh := ops.NewSplitHeads(tensor.S(1, 3, 4), 2, dt) // [1,3,4] -> [1,2,3,2]
	split := eval(t, sh, x)
	mh := ops.NewMergeHeads(tensor.S(1, 2, 3, 2), dt)
	wantSlice(t, eval(t, mh, split), x, 0)

	// Transpose [2,3] -> [3,2].
	tr := ops.NewTranspose(tensor.S(2, 3), []int{1, 0}, dt)
	wantSlice(t, eval(t, tr, []float64{1, 2, 3, 4, 5, 6}), []float64{1, 4, 2, 5, 3, 6}, 0)

	// Slice+Concat along dim 2 reassembles the tensor.
	s1 := eval(t, ops.NewSlice(tensor.S(2, 3), 2, 0, 1, dt), []float64{1, 2, 3, 4, 5, 6})
	s2 := eval(t, ops.NewSlice(tensor.S(2, 3), 2, 1, 2, dt), []float64{1, 2, 3, 4, 5, 6})
	cc := ops.NewConcat([]tensor.Shape{tensor.S(2, 1), tensor.S(2, 2)}, 2, dt)
	wantSlice(t, eval(t, cc, s1, s2), []float64{1, 2, 3, 4, 5, 6}, 0)

	// Pad places the slice back at its offset, zero elsewhere.
	pad := ops.NewPad(tensor.S(2, 2), 2, 1, 3, dt)
	wantSlice(t, eval(t, pad, []float64{2, 3, 5, 6}), []float64{0, 2, 3, 0, 5, 6}, 0)

	// Embedding gathers rows; out-of-range ids wrap instead of crashing.
	emb := ops.NewEmbedding(tensor.S(3), tensor.S(2, 2), dt)
	wantSlice(t, eval(t, emb, []float64{0, 1, 5}, []float64{10, 11, 20, 21}),
		[]float64{10, 11, 20, 21, 20, 21}, 0)
}

// TestStoreLoadRoundTrip: a Store/Load pair is the identity in plain
// execution, so swapped graphs compute the same function.
func TestStoreLoadRoundTrip(t *testing.T) {
	dt := tensor.F32
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(2, 2), dt))
	r := g.Add(ops.NewReLU(tensor.S(2, 2), dt), x)
	st := g.Add(ops.NewStore(tensor.S(2, 2), dt), r)
	ld := g.Add(ops.NewLoad(tensor.S(2, 2), dt), st)
	out := g.Add(ops.NewTanh(tensor.S(2, 2), dt), ld)

	vals, err := refexec.Run(g, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals[r] {
		if vals[ld][i] != vals[r][i] {
			t.Fatalf("load elem %d = %g, stored %g", i, vals[ld][i], vals[r][i])
		}
	}
	if len(vals[out]) != 4 {
		t.Fatal("missing final value")
	}
}

// TestModelExecutionDeterministic: a full training graph (forward,
// backward, SGD) executes end to end, produces finite values, and two
// runs with the same seed are bitwise identical.
func TestModelExecutionDeterministic(t *testing.T) {
	w := models.MLP(4, 6, 8, 3, 2)
	a, err := refexec.Run(w.G, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := refexec.Run(w.G, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != w.G.Len() {
		t.Fatalf("executed %d nodes, graph has %d", len(a), w.G.Len())
	}
	for id, av := range a {
		for i := range av {
			if math.IsNaN(av[i]) || math.IsInf(av[i], 0) {
				t.Fatalf("node %d elem %d is %g", id, i, av[i])
			}
			if av[i] != b[id][i] {
				t.Fatalf("node %d not deterministic", id)
			}
		}
	}
	if loss := a[w.Loss]; len(loss) == 0 || loss[0] <= 0 {
		t.Fatalf("implausible loss %v", a[w.Loss])
	}
}

// TestSeedLeavesRespectsIndexBounds: leaves consumed as embedding ids or
// cross-entropy labels are seeded with in-range integers.
func TestSeedLeavesRespectsIndexBounds(t *testing.T) {
	const vocab = 17
	w := models.TransformerLM("seed-test", 2, 8, 16, 1, 2, vocab, tensor.TF32, false)
	leaves := refexec.SeedLeaves(w.G, 5)
	for _, id := range w.G.NodeIDs() {
		n := w.G.Node(id)
		if n.Name != "ids" && n.Name != "labels" {
			continue
		}
		for i, v := range leaves[id] {
			if v != math.Trunc(v) || v < 0 || v >= vocab {
				t.Fatalf("%s[%d] = %g, want integer in [0,%d)", n.Name, i, v, vocab)
			}
		}
	}
}

// TestBF16Quantization: outputs of a bf16 node carry at most 8 mantissa
// bits — the interpreter really does round at every step.
func TestBF16Quantization(t *testing.T) {
	dt := tensor.BF16
	g := graph.New()
	a := g.Add(ops.NewInput(tensor.S(4), dt))
	b := g.Add(ops.NewInput(tensor.S(4), dt))
	sum := g.Add(ops.NewAdd(tensor.S(4), tensor.S(4), dt), a, b)
	vals, err := refexec.Run(g, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals[sum] {
		if q := dt.Quantize(v); q != v {
			t.Errorf("bf16 output %g not quantized (rounds to %g)", v, q)
		}
	}
}
