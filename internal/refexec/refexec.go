// Package refexec is a reference interpreter for the graph IR: it gives
// tensors real contents and executes any graph — including transformed
// graphs containing Store/Load transfer pairs — on small deterministic
// seeded inputs.
//
// It exists for verification, not performance (see internal/verify): a
// rewrite rule or a memory plan is correct exactly when the numbers it
// produces match the numbers the untransformed graph produces. All
// arithmetic is float64, but every operator output is re-quantized to the
// node's dtype (tensor.DType.Quantize), so two executions of structurally
// identical graphs are bitwise equal and tolerance is only needed where a
// rewrite genuinely reassociates arithmetic.
//
// Backward operators are implemented as true derivatives of their forward
// counterparts wherever the operator's inputs suffice, which is what makes
// finite-difference gradchecking of internal/autodiff possible. The two
// deliberate exceptions match the emitted-kernel semantics instead:
// Dropout is the deterministic identity (so DropoutBwd is exact), and
// BatchNormBwdX keeps the documented surrogate dy - mean(dy).
package refexec

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// Values holds one buffer per executed node, keyed by node ID.
type Values map[graph.NodeID][]float64

// Run executes g under the given schedule (nil means topological order)
// with leaves seeded from seed, and returns every node's value.
func Run(g *graph.Graph, order sched.Schedule, seed uint64) (Values, error) {
	if order == nil {
		order = sched.Schedule(g.Topo())
	}
	return Exec(g, order, SeedLeaves(g, seed))
}

// Exec executes g in schedule order using the given leaf buffers.
func Exec(g *graph.Graph, order sched.Schedule, leaves map[graph.NodeID][]float64) (Values, error) {
	if err := order.Validate(g); err != nil {
		return nil, fmt.Errorf("refexec: %w", err)
	}
	vals := make(Values, len(order))
	for _, v := range order {
		out, err := EvalNode(g, v, leaves, func(in graph.NodeID) []float64 { return vals[in] })
		if err != nil {
			return nil, err
		}
		vals[v] = out
	}
	return vals, nil
}

// EvalNode computes node v's output, resolving input values through read.
// Leaves take their buffer from leaves; every other node dispatches to its
// registered kernel and is quantized to the node's dtype. The plan-level
// arena checker reuses this with a read function that decodes values out
// of the planned arena.
func EvalNode(g *graph.Graph, v graph.NodeID, leaves map[graph.NodeID][]float64, read func(graph.NodeID) []float64) ([]float64, error) {
	n := g.Node(v)
	spec, ok := n.Op.(*ops.Spec)
	if !ok {
		return nil, fmt.Errorf("refexec: node %d has non-operator payload %q: materialize fission regions before executing", v, n.Op.Kind())
	}
	kind := spec.Kind()
	if ops.IsLeaf(kind) {
		buf, ok := leaves[v]
		if !ok {
			return nil, fmt.Errorf("refexec: no seeded buffer for leaf %d (%s)", v, kind)
		}
		if want := int(spec.OutShape().Elems()); len(buf) != want {
			return nil, fmt.Errorf("refexec: leaf %d (%s) buffer has %d elements, shape needs %d", v, kind, len(buf), want)
		}
		return buf, nil
	}
	ins := make([][]float64, len(n.Ins))
	for i, in := range n.Ins {
		ins[i] = read(in)
		if ins[i] == nil {
			return nil, fmt.Errorf("refexec: node %d (%s) reads node %d before it was computed", v, kind, in)
		}
	}
	out, err := EvalSpec(spec, ins)
	if err != nil {
		return nil, fmt.Errorf("refexec: node %d: %w", v, err)
	}
	dt := spec.DType()
	for i := range out {
		out[i] = dt.Quantize(out[i])
	}
	return out, nil
}

// SeedLeaves builds deterministic input/parameter buffers for g: every
// leaf gets values derived from (seed, node ID), so the same graph and
// seed always execute identically, and a transformed copy of the graph
// (which preserves leaf IDs) sees the very same inputs. Leaves consumed
// as integer indices — embedding ids, cross-entropy labels, the same
// predicate codegen applies — get in-range integers instead of reals.
func SeedLeaves(g *graph.Graph, seed uint64) map[graph.NodeID][]float64 {
	bounds := indexBounds(g)
	out := make(map[graph.NodeID][]float64)
	for _, v := range g.NodeIDs() {
		n := g.Node(v)
		if !ops.IsLeaf(n.Op.Kind()) {
			continue
		}
		dt := n.Op.DType()
		buf := make([]float64, n.Op.OutShape().Elems())
		r := newRNG(seed, uint64(v))
		if vr := bounds[v]; vr > 0 {
			for i := range buf {
				buf[i] = dt.Quantize(float64(r.next() % uint64(vr)))
			}
		} else {
			for i := range buf {
				buf[i] = dt.Quantize(r.float()*0.5 - 0.25)
			}
		}
		out[v] = buf
	}
	return out
}

// indexBounds returns, for every node consumed as integer indices, the
// tightest exclusive upper bound its values must respect.
func indexBounds(g *graph.Graph) map[graph.NodeID]int {
	out := map[graph.NodeID]int{}
	tighten := func(v graph.NodeID, bound int) {
		if cur, ok := out[v]; !ok || bound < cur {
			out[v] = bound
		}
	}
	for _, v := range g.NodeIDs() {
		n := g.Node(v)
		spec, ok := n.Op.(*ops.Spec)
		if !ok {
			continue
		}
		switch spec.Kind() {
		case ops.KindEmbedding:
			tighten(n.Ins[0], spec.InShape(1).Dim(1))
		case "EmbeddingBwd":
			tighten(n.Ins[0], spec.OutShape().Dim(1))
		case ops.KindCrossEnt, "CrossEntropyBwd":
			ls := spec.InShape(0)
			tighten(n.Ins[1], ls.Dim(ls.Rank()))
		}
	}
	return out
}

// rng is a splitmix64 stream, keyed by (seed, stream) so each leaf draws
// an independent deterministic sequence.
type rng struct{ s uint64 }

func newRNG(seed, stream uint64) *rng {
	return &rng{s: (seed + 0x9E3779B97F4A7C15) ^ (stream+1)*0xBF58476D1CE4E5B9}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
