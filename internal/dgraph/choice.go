package dgraph

import (
	"sort"

	"magis/internal/graph"
)

// Choice assigns each node of a fission sub-graph S the axis it is split
// along. A positive axis means the node's output is sliced into parts
// (merged by Concat); a negative axis means each part computes a partial
// reduction (merged by Add). Inputs of S appear with a positive axis when
// they must be sliced per part; absent inputs are shared whole.
type Choice map[graph.NodeID]int

// ChoiceFor resolves the paper's constraint (3) for f = (S, D, n): it
// selects exactly one axis per member of S from the component comp such
// that every internal edge of G[S] is covered by a dimension-graph edge,
// and derives the slicing requirement of each input. It returns false when
// no consistent assignment exists (the fission candidate is invalid along
// this graph-level dimension).
func ChoiceFor(d *DGraph, g *graph.Graph, comp Component, s graph.Set) (Choice, bool) {
	// Candidate axes per member, restricted to the component.
	cands := make(map[graph.NodeID][]int, len(s))
	for v := range s {
		var axes []int
		for _, a := range d.byNode[v] {
			if comp[DimNode{v, a}] {
				axes = append(axes, a)
			}
		}
		if len(axes) == 0 {
			return nil, false // node untouched by this dimension
		}
		// Deterministic preference: positive axes first, ascending.
		sort.Slice(axes, func(i, j int) bool {
			pi, pj := axes[i] > 0, axes[j] > 0
			if pi != pj {
				return pi
			}
			if pi {
				return axes[i] < axes[j]
			}
			return axes[i] > axes[j]
		})
		cands[v] = axes
	}
	// Constraint propagation over internal edges until a fixpoint, then
	// commit the preferred candidate node by node (re-propagating after
	// each commit). The per-edge relation: choice[u] -> choice[v] must be
	// an edge of D.
	edgeOK := func(u graph.NodeID, au int, v graph.NodeID, av int) bool {
		for _, to := range d.out[DimNode{u, au}] {
			if to.Node == v && to.Axis == av {
				return true
			}
		}
		return false
	}
	type edge struct{ u, v graph.NodeID }
	var edges []edge
	for v := range s {
		for _, u := range g.Pre(v) {
			if s[u] {
				edges = append(edges, edge{u, v})
			}
		}
	}
	propagate := func() bool {
		changed := true
		for changed {
			changed = false
			for _, e := range edges {
				// Filter v's candidates to ones reachable from some u cand.
				var keepV []int
				for _, av := range cands[e.v] {
					ok := false
					for _, au := range cands[e.u] {
						if au > 0 && edgeOK(e.u, au, e.v, av) {
							ok = true
							break
						}
					}
					if ok {
						keepV = append(keepV, av)
					}
				}
				if len(keepV) == 0 {
					return false
				}
				if len(keepV) != len(cands[e.v]) {
					cands[e.v] = keepV
					changed = true
				}
				// Filter u's candidates to ones feeding some v cand; a
				// negative (reduce) choice cannot feed anything, so any
				// node with in-S consumers must keep a positive axis.
				var keepU []int
				for _, au := range cands[e.u] {
					if au < 0 {
						continue
					}
					ok := false
					for _, av := range cands[e.v] {
						if edgeOK(e.u, au, e.v, av) {
							ok = true
							break
						}
					}
					if ok {
						keepU = append(keepU, au)
					}
				}
				if len(keepU) == 0 {
					return false
				}
				if len(keepU) != len(cands[e.u]) {
					cands[e.u] = keepU
					changed = true
				}
			}
		}
		return true
	}
	if !propagate() {
		return nil, false
	}
	for _, v := range sortedKeys(cands) {
		if len(cands[v]) == 1 {
			continue
		}
		cands[v] = cands[v][:1]
		if !propagate() {
			return nil, false
		}
	}
	choice := make(Choice, len(s))
	for v, axes := range cands {
		choice[v] = axes[0]
	}
	// Derive input slicing: input u of consumer v (v in S) is sliced along
	// dim i when a link (i -> choice[v]) exists. Conflicting requirements
	// across consumers invalidate the fission.
	for v := range s {
		node := g.Node(v)
		for _, u := range node.Ins {
			if s[u] {
				continue
			}
			for _, a := range d.byNode[u] {
				if a <= 0 {
					continue
				}
				if edgeOK(u, a, v, choice[v]) {
					if prev, ok := choice[u]; ok && prev != a {
						return nil, false
					}
					choice[u] = a
				}
			}
		}
	}
	return choice, true
}

func sortedKeys(m map[graph.NodeID][]int) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
