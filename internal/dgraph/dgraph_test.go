package dgraph

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// attention builds a self-attention core resembling Fig. 4: Q,K,V inputs
// of shape [B,H,T,h], scores = BMM(Q, K^T), probs = Softmax(scores, axis 4),
// out = BMM(probs, V).
func attention() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	sh := tensor.S(2, 4, 8, 16) // B,H,T,h
	q := g.AddNamed("Q", ops.NewInput(sh, tensor.F32))
	k := g.AddNamed("K", ops.NewInput(sh, tensor.F32))
	v := g.AddNamed("V", ops.NewInput(sh, tensor.F32))
	scores := g.AddNamed("scores", ops.NewBatchMatmul(sh, sh, false, true, tensor.F32), q, k)
	probs := g.AddNamed("probs", ops.NewSoftmax(tensor.S(2, 4, 8, 8), 4, tensor.F32), scores)
	out := g.AddNamed("out", ops.NewBatchMatmul(tensor.S(2, 4, 8, 8), sh, false, false, tensor.F32), probs, v)
	return g, map[string]graph.NodeID{"q": q, "k": k, "v": v, "scores": scores, "probs": probs, "out": out}
}

func findComponent(comps []Component, dn DimNode) Component {
	for _, c := range comps {
		if c[dn] {
			return c
		}
	}
	return nil
}

func TestAttentionComponents(t *testing.T) {
	g, n := attention()
	d := Build(g)
	comps := d.Components()
	// Batch component spans every tensor's dim 1.
	batch := findComponent(comps, DimNode{n["q"], 1})
	if batch == nil {
		t.Fatal("no batch component")
	}
	for _, name := range []string{"k", "v", "scores", "probs", "out"} {
		if !batch[DimNode{n[name], 1}] {
			t.Errorf("batch component missing %s dim 1", name)
		}
	}
	// Sequence (row) component: Q's T flows through scores/probs/out dim 3,
	// but NOT into K's T (that one feeds the softmax-normalized axis).
	seq := findComponent(comps, DimNode{n["q"], 3})
	if seq == nil {
		t.Fatal("no sequence component")
	}
	for _, dn := range []DimNode{{n["scores"], 3}, {n["probs"], 3}, {n["out"], 3}} {
		if !seq[dn] {
			t.Errorf("row component missing %v", dn)
		}
	}
	if seq[DimNode{n["k"], 3}] {
		t.Error("K's sequence dim must be cut off by the softmax axis")
	}
}

func TestAttentionRowFissionChoice(t *testing.T) {
	g, n := attention()
	d := Build(g)
	seq := findComponent(d.Components(), DimNode{n["q"], 3})
	s := graph.NewSet(n["scores"], n["probs"], n["out"])
	choice, ok := ChoiceFor(d, g, seq, s)
	if !ok {
		t.Fatal("row fission should be valid")
	}
	for _, name := range []string{"scores", "probs", "out"} {
		if choice[n[name]] != 3 {
			t.Errorf("%s choice = %d, want 3", name, choice[n[name]])
		}
	}
	if choice[n["q"]] != 3 {
		t.Errorf("Q should be sliced along dim 3, got %d", choice[n["q"]])
	}
	if _, sliced := choice[n["k"]]; sliced {
		t.Error("K must be shared, not sliced (FlashAttention row blocking)")
	}
	if _, sliced := choice[n["v"]]; sliced {
		t.Error("V must be shared, not sliced")
	}
}

func TestAttentionBatchFissionChoice(t *testing.T) {
	g, n := attention()
	d := Build(g)
	batch := findComponent(d.Components(), DimNode{n["q"], 1})
	s := graph.NewSet(n["scores"], n["probs"], n["out"])
	choice, ok := ChoiceFor(d, g, batch, s)
	if !ok {
		t.Fatal("batch fission should be valid")
	}
	for _, name := range []string{"q", "k", "v"} {
		if choice[n[name]] != 1 {
			t.Errorf("%s should be sliced along batch, got %d", name, choice[n[name]])
		}
	}
}

// mlpTrain builds the Fig. 5 pattern: x[B,I] -> h=x*w -> y=ReLU(h), with a
// gradient path producing gw by a transposed matmul reducing over batch.
func mlpTrain() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	x := g.AddNamed("x", ops.NewInput(tensor.S(32, 64), tensor.F32))
	w := g.AddNamed("w", ops.NewParam(tensor.S(64, 16), tensor.F32))
	h := g.AddNamed("h", ops.NewMatmul(tensor.S(32, 64), tensor.S(64, 16), false, false, tensor.F32), x, w)
	y := g.AddNamed("y", ops.NewReLU(tensor.S(32, 16), tensor.F32), h)
	gy := g.AddNamed("gy", ops.NewEltwiseBwd("ReLUBwd", tensor.S(32, 16), tensor.S(32, 16), tensor.F32, 1), h, y)
	gw := g.AddNamed("gw", ops.NewMatmul(tensor.S(32, 64), tensor.S(32, 16), true, false, tensor.F32), x, gy)
	return g, map[string]graph.NodeID{"x": x, "w": w, "h": h, "y": y, "gy": gy, "gw": gw}
}

func TestTrainingBatchFissionWithGradReduce(t *testing.T) {
	g, n := mlpTrain()
	d := Build(g)
	batch := findComponent(d.Components(), DimNode{n["h"], 1})
	if batch == nil {
		t.Fatal("no batch component")
	}
	if !batch[DimNode{n["gw"], -1}] {
		t.Error("weight gradient's reduce axis should join the batch dimension")
	}
	s := graph.NewSet(n["h"], n["y"], n["gy"], n["gw"])
	choice, ok := ChoiceFor(d, g, batch, s)
	if !ok {
		t.Fatal("batch fission of the training step should be valid")
	}
	if choice[n["gw"]] != -1 {
		t.Errorf("gw must be reduce-merged, got axis %d", choice[n["gw"]])
	}
	if choice[n["h"]] != 1 || choice[n["y"]] != 1 || choice[n["gy"]] != 1 {
		t.Errorf("activations split along batch: %v", choice)
	}
	if choice[n["x"]] != 1 {
		t.Error("x must be sliced along batch")
	}
	if _, sliced := choice[n["w"]]; sliced {
		t.Error("weights must be shared")
	}
}

func TestChoiceRejectsPartialDimension(t *testing.T) {
	// A sub-graph straddling the softmax-normalized axis cannot be split
	// along the K-side sequence dimension.
	g, n := attention()
	d := Build(g)
	kseq := findComponent(d.Components(), DimNode{n["k"], 3})
	if kseq == nil {
		t.Skip("K sequence forms no multi-node component")
	}
	s := graph.NewSet(n["scores"], n["probs"])
	if _, ok := ChoiceFor(d, g, kseq, s); ok {
		t.Error("splitting through the softmax axis must be invalid")
	}
}

func TestComponentGraphNodes(t *testing.T) {
	g, n := attention()
	d := Build(g)
	batch := findComponent(d.Components(), DimNode{n["q"], 1})
	nodes := batch.GraphNodes()
	if len(nodes) != 6 {
		t.Errorf("batch dimension should touch all 6 nodes, got %d", len(nodes))
	}
}
