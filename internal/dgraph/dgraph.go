// Package dgraph implements the Dimension Graph D(G) of §4.1: a graph
// whose nodes are the output dimensions and reduce axes of every operator,
// and whose edges connect dimensions that correspond to the same spatial
// axis across a data dependency. Its weakly connected components are the
// graph-level dimensions (batch, heads, sequence, ...) along which Fission
// Transformation is legal.
package dgraph

import (
	"sort"

	"magis/internal/graph"
	"magis/internal/ops"
)

// DimNode is one vertex of D(G): axis Axis of the output of Node.
// Axis > 0 is a 1-based output dimension; Axis < 0 is a reduce axis.
type DimNode struct {
	Node graph.NodeID
	Axis int
}

// DGraph is the dimension graph of one computation graph.
type DGraph struct {
	// out maps a producer dimension to the consumer axes it feeds.
	out map[DimNode][]DimNode
	// in is the reverse adjacency.
	in map[DimNode][]DimNode
	// byNode lists the axes present for each graph node.
	byNode map[graph.NodeID][]int
}

// Build constructs D(G). Nodes whose payload is not *ops.Spec contribute
// no dimension vertices.
func Build(g *graph.Graph) *DGraph {
	d := &DGraph{
		out:    make(map[DimNode][]DimNode),
		in:     make(map[DimNode][]DimNode),
		byNode: make(map[graph.NodeID][]int),
	}
	for _, v := range g.NodeIDs() {
		spec, ok := g.Node(v).Op.(*ops.Spec)
		if !ok {
			continue
		}
		for a := 1; a <= spec.OutShape().Rank(); a++ {
			d.byNode[v] = append(d.byNode[v], a)
		}
		for r := 1; r <= spec.NumReduceAxes(); r++ {
			d.byNode[v] = append(d.byNode[v], -r)
		}
	}
	for _, v := range g.NodeIDs() {
		spec, ok := g.Node(v).Op.(*ops.Spec)
		if !ok {
			continue
		}
		for idx, u := range g.Node(v).Ins {
			if _, isSpec := g.Node(u).Op.(*ops.Spec); !isSpec {
				continue
			}
			for _, lk := range spec.DimLinks(idx) {
				from := DimNode{u, lk.In}
				to := DimNode{v, lk.Out}
				d.out[from] = append(d.out[from], to)
				d.in[to] = append(d.in[to], from)
			}
		}
	}
	return d
}

// Axes returns the axes of v present in D(G).
func (d *DGraph) Axes(v graph.NodeID) []int { return d.byNode[v] }

// Component is one weakly connected component of D(G): a graph-level
// dimension.
type Component map[DimNode]bool

// Components returns the weakly connected components with at least two
// vertices (singleton dimensions admit no useful fission), ordered by
// their smallest member for determinism.
func (d *DGraph) Components() []Component {
	seen := make(map[DimNode]bool)
	var keys []DimNode
	for k := range d.out {
		keys = append(keys, k)
	}
	for k := range d.in {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Axis < keys[j].Axis
	})
	var comps []Component
	for _, k := range keys {
		if seen[k] {
			continue
		}
		comp := Component{}
		stack := []DimNode{k}
		seen[k] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp[x] = true
			for _, y := range append(append([]DimNode(nil), d.out[x]...), d.in[x]...) {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		if len(comp) >= 2 {
			comps = append(comps, comp)
		}
	}
	return comps
}

// GraphNodes returns the distinct graph nodes touched by a component,
// ascending.
func (c Component) GraphNodes() []graph.NodeID {
	set := make(map[graph.NodeID]bool)
	for dn := range c {
		set[dn.Node] = true
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
