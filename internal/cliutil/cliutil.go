// Package cliutil holds the flag validation shared by the magis binaries
// (magis, magis-bench, magis-serve), so every front-end rejects the same
// bad inputs with the same messages — and rejects them in milliseconds,
// before any multi-second workload construction or baseline evaluation.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Search are the search-shaping flag values common to the magis binaries.
// Zero values are NOT defaults here: each binary applies its own flag
// defaults first and validates the final values.
type Search struct {
	// Scale is the workload batch-size scale factor, in (0,1].
	Scale float64
	// Budget is the search time budget per run; must be positive.
	Budget time.Duration
	// Workers is the parallel candidate-evaluation width; 0 means
	// GOMAXPROCS, negative is invalid.
	Workers int
	// Headroom is the re-optimization ladder's budget margin, in (0,0.9].
	Headroom float64
	// Faults is the fault-replay scenario count; negative is invalid.
	Faults int
}

// Validate returns the first invalid flag as an error phrased for direct
// CLI output (it names the flag).
func (s Search) Validate() error {
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("invalid -scale %v: must be in (0,1]", s.Scale)
	}
	if s.Budget <= 0 {
		return fmt.Errorf("invalid -budget %v: must be positive", s.Budget)
	}
	if s.Workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 = GOMAXPROCS)", s.Workers)
	}
	if s.Headroom <= 0 || s.Headroom > 0.9 {
		return fmt.Errorf("invalid -headroom %v: must be in (0,0.9]", s.Headroom)
	}
	if s.Faults < 0 {
		return fmt.Errorf("invalid -faults %d: must be >= 0", s.Faults)
	}
	return nil
}

// byteSuffixes maps size suffixes to multipliers: the binary family
// (KiB/MiB/...) is 1024-based, the decimal family (KB/MB/...) 1000-based,
// and bare K/M/G/T follow the binary convention (what an operator setting
// a memory budget almost always means). Longer suffixes are listed first
// so "MiB" never matches as "B" with a garbage prefix.
var byteSuffixes = []struct {
	suffix string
	mult   int64
}{
	{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
	{"kb", 1e3}, {"mb", 1e6}, {"gb", 1e9}, {"tb", 1e12},
	{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
	{"b", 1},
}

// ParseBytes parses a human-readable byte size ("512MiB", "2GB", "64m",
// "1073741824") into bytes. Suffixes are case-insensitive; fractional
// values ("1.5GiB") are allowed with a suffix. The empty string and "0"
// both mean zero (every caller treats zero as "feature off"). The error
// is phrased for direct CLI output.
func ParseBytes(s string) (int64, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, sx := range byteSuffixes {
		if strings.HasSuffix(s, sx.suffix) {
			mult = sx.mult
			s = strings.TrimSpace(strings.TrimSuffix(s, sx.suffix))
			break
		}
	}
	if s == "" {
		return 0, fmt.Errorf("invalid size %q: no number before the suffix", orig)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("invalid size %q: must be >= 0", orig)
		}
		if mult > 1 && n > (1<<62)/mult {
			return 0, fmt.Errorf("invalid size %q: overflows", orig)
		}
		return n * mult, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f != f {
		return 0, fmt.Errorf("invalid size %q: want a number with an optional B/KiB/MiB/GiB/KB/MB/GB suffix", orig)
	}
	if f < 0 {
		return 0, fmt.Errorf("invalid size %q: must be >= 0", orig)
	}
	if mult == 1 && f != float64(int64(f)) {
		return 0, fmt.Errorf("invalid size %q: fractional bytes need a unit suffix", orig)
	}
	out := f * float64(mult)
	if out > float64(1<<62) {
		return 0, fmt.Errorf("invalid size %q: overflows", orig)
	}
	return int64(out), nil
}
