// Package cliutil holds the flag validation shared by the magis binaries
// (magis, magis-bench, magis-serve), so every front-end rejects the same
// bad inputs with the same messages — and rejects them in milliseconds,
// before any multi-second workload construction or baseline evaluation.
package cliutil

import (
	"fmt"
	"time"
)

// Search are the search-shaping flag values common to the magis binaries.
// Zero values are NOT defaults here: each binary applies its own flag
// defaults first and validates the final values.
type Search struct {
	// Scale is the workload batch-size scale factor, in (0,1].
	Scale float64
	// Budget is the search time budget per run; must be positive.
	Budget time.Duration
	// Workers is the parallel candidate-evaluation width; 0 means
	// GOMAXPROCS, negative is invalid.
	Workers int
	// Headroom is the re-optimization ladder's budget margin, in (0,0.9].
	Headroom float64
	// Faults is the fault-replay scenario count; negative is invalid.
	Faults int
}

// Validate returns the first invalid flag as an error phrased for direct
// CLI output (it names the flag).
func (s Search) Validate() error {
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("invalid -scale %v: must be in (0,1]", s.Scale)
	}
	if s.Budget <= 0 {
		return fmt.Errorf("invalid -budget %v: must be positive", s.Budget)
	}
	if s.Workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 = GOMAXPROCS)", s.Workers)
	}
	if s.Headroom <= 0 || s.Headroom > 0.9 {
		return fmt.Errorf("invalid -headroom %v: must be in (0,0.9]", s.Headroom)
	}
	if s.Faults < 0 {
		return fmt.Errorf("invalid -faults %d: must be >= 0", s.Faults)
	}
	return nil
}
