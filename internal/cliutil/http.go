package cliutil

import (
	"fmt"
	"net/http"
	"time"
)

// HTTPTimeouts are the server-side socket deadlines every magis HTTP
// front-end applies. Without them a slow-loris client — one byte of
// header per minute, or a request body that never finishes — pins a
// connection (and its goroutine) forever; with them the kernel closes
// the laggard and the accept loop moves on.
type HTTPTimeouts struct {
	// ReadHeader bounds how long a client may take to send the full
	// request header; Read bounds the entire request including the body.
	ReadHeader time.Duration
	Read       time.Duration
	// Write bounds writing the response; Idle bounds how long a
	// keep-alive connection may sit between requests.
	Write time.Duration
	Idle  time.Duration
}

// DefaultHTTPTimeouts are serviceable for an optimize API whose request
// bodies are small JSON documents: generous enough for a slow but honest
// WAN client, tight enough that a deliberate dribbler is evicted in
// seconds, not hours.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       30 * time.Second,
		Write:      60 * time.Second,
		Idle:       2 * time.Minute,
	}
}

// Validate returns the first invalid timeout as an error phrased for
// direct CLI output (it names the flag). Zero disables the respective
// deadline — allowed, but an operator has to ask for it explicitly.
func (t HTTPTimeouts) Validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"-read-header-timeout", t.ReadHeader},
		{"-read-timeout", t.Read},
		{"-write-timeout", t.Write},
		{"-idle-timeout", t.Idle},
	} {
		if f.d < 0 {
			return fmt.Errorf("invalid %s %v: must be >= 0 (0 disables)", f.name, f.d)
		}
	}
	if t.ReadHeader > 0 && t.Read > 0 && t.ReadHeader > t.Read {
		return fmt.Errorf("invalid -read-header-timeout %v: exceeds -read-timeout %v", t.ReadHeader, t.Read)
	}
	return nil
}

// Apply sets the deadlines on an http.Server.
func (t HTTPTimeouts) Apply(s *http.Server) {
	s.ReadHeaderTimeout = t.ReadHeader
	s.ReadTimeout = t.Read
	s.WriteTimeout = t.Write
	s.IdleTimeout = t.Idle
}
