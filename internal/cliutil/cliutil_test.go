package cliutil

import (
	"strings"
	"testing"
	"time"
)

func valid() Search {
	return Search{Scale: 1, Budget: 5 * time.Second, Workers: 0, Headroom: 0.10, Faults: 0}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Search)
		wantErr string // "" = valid
	}{
		{"defaults", func(s *Search) {}, ""},
		{"max scale", func(s *Search) { s.Scale = 1 }, ""},
		{"tiny scale", func(s *Search) { s.Scale = 0.01 }, ""},
		{"sequential workers", func(s *Search) { s.Workers = 1 }, ""},
		{"many workers", func(s *Search) { s.Workers = 64 }, ""},
		{"max headroom", func(s *Search) { s.Headroom = 0.9 }, ""},
		{"with faults", func(s *Search) { s.Faults = 8 }, ""},

		{"zero scale", func(s *Search) { s.Scale = 0 }, "-scale"},
		{"negative scale", func(s *Search) { s.Scale = -0.5 }, "-scale"},
		{"overscale", func(s *Search) { s.Scale = 1.5 }, "-scale"},
		{"zero budget", func(s *Search) { s.Budget = 0 }, "-budget"},
		{"negative budget", func(s *Search) { s.Budget = -time.Second }, "-budget"},
		{"negative workers", func(s *Search) { s.Workers = -1 }, "-workers"},
		{"zero headroom", func(s *Search) { s.Headroom = 0 }, "-headroom"},
		{"negative headroom", func(s *Search) { s.Headroom = -0.1 }, "-headroom"},
		{"excess headroom", func(s *Search) { s.Headroom = 0.95 }, "-headroom"},
		{"negative faults", func(s *Search) { s.Faults = -1 }, "-faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error naming %s", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want it to name %s", err, tc.wantErr)
			}
		})
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"  42  ", 42, false},
		{"1b", 1, false},
		{"512MiB", 512 << 20, false},
		{"512mib", 512 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2GB", 2e9, false},
		{"3kb", 3000, false},
		{"64m", 64 << 20, false},
		{"2g", 2 << 30, false},
		{"1.5GiB", 3 << 29, false},
		{"0.5k", 512, false},
		{"1 GiB", 1 << 30, false},

		{"-1", 0, true},
		{"-1GiB", 0, true},
		{"GiB", 0, true},
		{"oneGB", 0, true},
		{"1.5", 0, true}, // fractional bytes without a unit
		{"12x", 0, true},
		{"NaNGiB", 0, true},
		{"9999999999999GiB", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestValidateReportsFirstError pins the precedence so scripts matching on
// stderr stay stable.
func TestValidateReportsFirstError(t *testing.T) {
	s := Search{Scale: -1, Budget: -1, Workers: -1, Headroom: -1, Faults: -1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "-scale") {
		t.Errorf("Validate() = %v, want the -scale error first", err)
	}
}
