package cliutil

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestHTTPTimeoutsValidate(t *testing.T) {
	if err := DefaultHTTPTimeouts().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if err := (HTTPTimeouts{}).Validate(); err != nil {
		t.Fatalf("all-zero (disabled) invalid: %v", err)
	}
	if err := (HTTPTimeouts{Read: -time.Second}).Validate(); err == nil {
		t.Fatal("negative read timeout accepted")
	}
	if err := (HTTPTimeouts{ReadHeader: 2 * time.Second, Read: time.Second}).Validate(); err == nil {
		t.Fatal("header timeout beyond read timeout accepted")
	}
}

// TestSlowLorisEvicted is the satellite regression test: a client that
// dribbles its request header must be disconnected by ReadHeaderTimeout
// instead of holding the connection open indefinitely, and an honest
// client on the same server is unaffected.
func TestSlowLorisEvicted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		}),
	}
	HTTPTimeouts{ReadHeader: 200 * time.Millisecond, Read: time.Second}.Apply(hs)
	go hs.Serve(ln)
	defer hs.Close()

	// The attacker: one header byte, then silence. The server must hang up
	// on its own initiative — the read below returning (EOF or reset)
	// proves it did.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	// Eviction shows up as either a 408 response followed by close, or an
	// immediate close (EOF/reset). The only failure mode is our read
	// deadline firing — the server still waiting on the dribbler.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	_, err = conn.Read(buf)
	for err == nil {
		_, err = conn.Read(buf)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not evict the slow-loris client within 5s")
	}

	// An honest client is still served.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("honest request failed alongside the attacker: %v", err)
	}
	defer resp.Body.Close()
	if body, _ := io.ReadAll(resp.Body); string(body) != "ok" {
		t.Fatalf("honest request got %q, want ok", body)
	}
}
