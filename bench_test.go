package magis

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). Each benchmark drives the same expr runner the
// magis-bench CLI uses, at a reduced scale/budget so `go test -bench=.`
// completes in minutes; pass -scale/-budget style fidelity through
// cmd/magis-bench for the full reproduction.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"magis/internal/expr"
	"magis/internal/models"
)

// benchCfg runs paper-scale tensor shapes with a reduced search budget:
// the trade-off space only has the paper's shape when operators are
// compute/bandwidth-bound rather than launch-bound, so batch sizes stay
// at Table 2 values and only the search time shrinks.
func benchCfg() expr.Config {
	return expr.Config{Scale: 1, Budget: 1500 * time.Millisecond}
}

// benchWorkloads is a representative three-topology subset (CNN,
// transformer, skip-heavy segmentation) at Table 2 scale.
func benchWorkloads() []*models.Workload {
	return []*models.Workload{
		models.ResNet50(64, 224),
		models.BERTBase(32, 512),
		models.UNet(32, 256),
	}
}

func BenchmarkTable2_Workloads(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows := expr.Table2(cfg)
		if len(rows) != 7 {
			b.Fatal("workload suite incomplete")
		}
	}
}

func BenchmarkFig9_MemoryUnderLatency(b *testing.B) {
	cfg := benchCfg()
	ws := benchWorkloads()
	for i := 0; i < b.N; i++ {
		rows := expr.Fig9(cfg, []float64{0.10}, ws)
		if len(rows) != len(ws) {
			b.Fatal("missing rows")
		}
		b.Log("\n" + expr.RenderFig9(rows))
	}
}

func BenchmarkFig10_LatencyUnderMemory(b *testing.B) {
	cfg := benchCfg()
	ws := benchWorkloads()
	for i := 0; i < b.N; i++ {
		rows := expr.Fig10(cfg, []float64{0.8}, ws)
		if len(rows) != len(ws) {
			b.Fatal("missing rows")
		}
		b.Log("\n" + expr.RenderFig10(rows))
	}
}

func BenchmarkFig11_Pareto(b *testing.B) {
	cfg := benchCfg()
	ws := benchWorkloads()[2:3] // UNet: the paper's showcase topology
	for i := 0; i < b.N; i++ {
		curves := expr.Fig11(cfg, ws, []float64{0.8, 0.6, 0.4})
		if len(curves) == 0 {
			b.Fatal("no curves")
		}
		b.Log("\n" + expr.RenderFig11(curves))
	}
}

func BenchmarkFig12_MicroBatch(b *testing.B) {
	cfg := benchCfg()
	w := models.ViTBase(64, 224, 16)
	for i := 0; i < b.N; i++ {
		pts := expr.Fig12(cfg, w, []float64{0.6, 0.4}, []int{8, 4})
		if len(pts) == 0 {
			b.Fatal("no points")
		}
		b.Log("\n" + expr.RenderFig12(pts))
	}
}

func BenchmarkFig13_Ablation(b *testing.B) {
	cfg := benchCfg()
	cfg.Budget = 500 * time.Millisecond
	w := models.BERTBase(32, 512)
	for i := 0; i < b.N; i++ {
		curves := expr.Fig13(cfg, w)
		if len(curves) == 0 {
			b.Fatal("no ablation curves")
		}
		b.Log("\n" + expr.RenderFig13(curves))
	}
}

func BenchmarkFig14_IncrementalScheduling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		sum := expr.Summarize(expr.Fig14(cfg, 10, 10))
		if sum.Samples == 0 {
			b.Fatal("no samples")
		}
		b.Log("\n" + expr.RenderFig14(sum))
	}
}

func BenchmarkFig15_TimeBreakdown(b *testing.B) {
	cfg := benchCfg()
	w := models.ViTBase(64, 224, 16)
	for i := 0; i < b.N; i++ {
		bd := expr.Fig15(cfg, w)
		if bd.Iterations == 0 {
			b.Fatal("empty breakdown")
		}
		b.Log("\n" + expr.RenderFig15(bd))
	}
}

func BenchmarkFig16_CaseStudy(b *testing.B) {
	cfg := benchCfg()
	w := models.UNet(32, 256)
	for i := 0; i < b.N; i++ {
		series := expr.Fig16(cfg, w)
		if len(series) < 2 {
			b.Fatal("missing series")
		}
		b.Log("\n" + expr.RenderFig16(series))
	}
}

// BenchmarkCore_* microbenchmarks price the building blocks.

func BenchmarkCore_Baseline(b *testing.B) {
	w := models.UNet(32, 256)
	m := NewModel(RTX3090())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Baseline(w.G, m)
	}
}

// BenchmarkCore_Optimize compares the sequential pipeline against the
// worker pool on the same fixed time budget: the "evals" metric (schedule
// evaluations completed per run) is the throughput the parallel pipeline
// exists to raise, and is comparable across worker counts because the
// search is deterministic in everything but wall-time.
func BenchmarkCore_Optimize(b *testing.B) {
	w := models.UNet(32, 256)
	m := NewModel(RTX3090())
	base := Baseline(w.G, m)
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Optimize(w.G, m, Options{
				Mode:         MemoryUnderLatency,
				LatencyLimit: base.Latency * 1.10,
				TimeBudget:   time.Second,
				Workers:      workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Sched), "evals")
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("workers=gomaxprocs-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkCore_OptimizeNASNet scales the search benchmark to a >= 500
// node NASNet-style graph (random cells, wide fan-in) and asserts the
// Fig. 15 phase breakdown is live: every phase must both run and be
// timed, so a refactor that silently stops exercising — or stops
// accounting — transformation, scheduling, or hashing fails here rather
// than showing up as a too-good throughput number. The phase shares are
// reported as metrics for bench_compare.sh trend tracking.
func BenchmarkCore_OptimizeNASNet(b *testing.B) {
	w := models.RandomNASNet(1, 24, 32, 64, 16)
	if n := w.G.Len(); n < 500 {
		b.Fatalf("NASNet case shrank to %d nodes; the large-graph benchmark needs >= 500", n)
	}
	m := NewModel(RTX3090())
	base := Baseline(w.G, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Optimize(w.G, m, Options{
			Mode:         MemoryUnderLatency,
			LatencyLimit: base.Latency * 1.10,
			TimeBudget:   time.Second,
			Workers:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		st := res.Stats
		if st.Trans == 0 || st.Sched == 0 || st.Hash == 0 {
			b.Fatalf("dead phase: Trans=%d Sched=%d Hash=%d", st.Trans, st.Sched, st.Hash)
		}
		if st.TransTime <= 0 || st.SchedTime <= 0 || st.HashTime <= 0 {
			b.Fatalf("untimed phase: Trans=%v Sched=%v Hash=%v",
				st.TransTime, st.SchedTime, st.HashTime)
		}
		busy := float64(st.TransTime + st.SchedTime + st.SimulTime + st.HashTime)
		b.ReportMetric(float64(res.Stats.Sched), "evals")
		b.ReportMetric(100*float64(st.TransTime)/busy, "trans-%")
		b.ReportMetric(100*float64(st.SchedTime)/busy, "sched-%")
		b.ReportMetric(100*float64(st.HashTime)/busy, "hash-%")
	}
}

// BenchmarkAblation_* isolate the design choices DESIGN.md calls out.

func ablationRun(b *testing.B, o Options) {
	w := models.UNet(32, 256)
	m := NewModel(RTX3090())
	base := Baseline(w.G, m)
	o.Mode = MemoryUnderLatency
	o.LatencyLimit = base.Latency * 1.10
	o.TimeBudget = time.Second
	for i := 0; i < b.N; i++ {
		res, err := Optimize(w.G, m, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Best.PeakMem)/float64(base.PeakMem), "mem-ratio")
		b.ReportMetric(float64(res.Stats.Iterations), "iterations")
	}
}

func BenchmarkAblation_Default(b *testing.B)         { ablationRun(b, Options{}) }
func BenchmarkAblation_NaiveFission(b *testing.B)    { ablationRun(b, Options{NaiveFission: true}) }
func BenchmarkAblation_NaiveSchedRules(b *testing.B) { ablationRun(b, Options{NaiveSchedRules: true}) }
func BenchmarkAblation_NoFission(b *testing.B)       { ablationRun(b, Options{DisableFission: true}) }
func BenchmarkAblation_FullReschedule(b *testing.B)  { ablationRun(b, Options{FullReschedule: true}) }
func BenchmarkAblation_MaxLevel2(b *testing.B)       { ablationRun(b, Options{MaxLevel: 2}) }
func BenchmarkAblation_MaxLevel8(b *testing.B)       { ablationRun(b, Options{MaxLevel: 8}) }
