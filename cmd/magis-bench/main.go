// Command magis-bench regenerates the paper's evaluation tables and
// figures (Table 2, Figs. 9-16) on the simulated substrate.
//
// Usage:
//
//	magis-bench [-scale 0.25] [-budget 5s] [-workers N] table2 fig9 ... | all
//	magis-bench -cpuprofile cpu.pprof -memprofile mem.pprof fig15
//	magis-bench -scale 0.05 -budget 2s -faults 8 audit
//
// At -scale 1 and -budget 3m this is the paper's configuration; smaller
// values trade fidelity for runtime. -workers sets the search's parallel
// candidate evaluation (0 = GOMAXPROCS); profiles are written on exit and
// inspected with `go tool pprof`.
//
// The audit target (also reachable via the -audit flag) is the
// execution-feasibility harness: each workload's plan is cross-validated
// by the differential audit, replayed under -faults seeded fault scenarios
// (-fault-seed), and — when infeasible — repaired through the adaptive
// re-optimization ladder with a -headroom budget margin.
//
// The cache target benchmarks the persistent plan cache life cycle on the
// same miniature suite: cold search, verification-gated admission, exact
// hit, and a warm-started search seeded from the cached plan.
//
// The verify target numerically verifies a miniature version of each
// evaluation workload: its graph is optimized, executed against the
// memory plan's concrete arena offsets, and cross-checked against the
// unoptimized graph (see internal/verify). -mutate corrupts one plan
// offset per workload first and expects the checker to trap it; any
// unclean verification report makes the process exit 1.
//
// SIGINT/SIGTERM cancels in-flight searches: the current target renders
// with whatever best-so-far states were reached, remaining targets are
// skipped, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"syscall"
	"time"

	"magis/internal/cliutil"
	"magis/internal/cost"
	"magis/internal/expr"
	"magis/internal/faults"
	"magis/internal/graph"
	"magis/internal/memplan"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/robust"
	"magis/internal/sched"
	"magis/internal/tensor"
	"magis/internal/verify"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1, "workload batch scale factor (paper: 1)")
		budget     = flag.Duration("budget", 5*time.Second, "MAGIS search budget per run (paper: 3m)")
		workers    = flag.Int("workers", 0, "parallel candidate evaluations per search (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this path")

		strictHash = flag.Bool("strict-hash", false, "disable incremental WL hashing in every search (escape hatch; the two paths are bit-identical)")
		memBudg    = flag.String("mem-budget", "", "soft live-memory budget per search (e.g. 512MiB); over budget a search sheds state and settles best-so-far instead of OOMing (empty = off)")

		verifySeed = flag.Uint64("verify-seed", 1, "seed for the verify target's numeric inputs")
		oracleSeqs = flag.Int("oracle-seqs", 100, "randomized rewrite sequences the oracle target compares")
		oracleSeed = flag.Int64("oracle-seed", 42, "seed for the oracle target's rewrite sequences")
		mutate     = flag.Bool("mutate", false, "verify target: corrupt one memory-plan offset per workload first; the arena checker must then trap it and the run exits non-zero")

		soakURL   = flag.String("soak-url", "http://127.0.0.1:8080", "soak target: base URL of the magis-serve instance to drive")
		soakJobs  = flag.Int("soak-jobs", 60, "soak target: traffic submissions to attempt")
		soakSeed  = flag.Int64("soak-seed", 1, "soak target: seed for the traffic mix")
		soakPois  = flag.String("soak-poison", "", "soak target: poisoned model name (must match the server's -chaos-poison-model; empty skips the breaker phase)")
		soakModel = flag.String("soak-model", "mlp", "soak target: healthy model driven by the traffic mix")
		soakWait  = flag.Duration("soak-settle", 2*time.Minute, "soak target: how long to wait for jobs to settle")
		soakP99   = flag.Duration("soak-hit-p99", 2*time.Second, "soak target: SLO floor for cache-hit p99 latency")
		soakDegr  = flag.Float64("soak-max-degraded", 0.5, "soak target: SLO floor for the degraded fraction of completed jobs")

		hostileURL    = flag.String("hostile-url", "http://127.0.0.1:8080", "hostile target: base URL of the magis-serve instance to attack")
		hostileFlood  = flag.Int("hostile-flood", 200, "hostile target: bully-client flood submissions")
		hostileGood   = flag.Int("hostile-good", 10, "hostile target: well-behaved submissions riding through the flood")
		hostileP95    = flag.Duration("hostile-good-p95", 2*time.Second, "hostile target: SLO floor for the good client's p95 response time under flood")
		hostileSettle = flag.Duration("hostile-settle", 2*time.Minute, "hostile target: how long to wait for jobs to settle")
		hostileLoris  = flag.Bool("hostile-loris", true, "hostile target: run the slow-loris phase (server must enforce read timeouts)")

		auditFlag = flag.Bool("audit", false, "run the execution-feasibility audit target after the others")
		faultsN   = flag.Int("faults", 0, "fault scenarios per workload in the audit target (0 = audit only)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
		headroom  = flag.Float64("headroom", 0.10, "budget margin the re-optimization ladder reserves, in (0,0.9]")
		ckDir     = flag.String("checkpoint", "", "checkpoint the audit target's ladders into per-workload subdirectories of this path (re-running on the same path resumes them)")
	)
	flag.Parse()
	if err := (cliutil.Search{Scale: *scale, Budget: *budget, Workers: *workers,
		Headroom: *headroom, Faults: *faultsN}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	memBudget, err := cliutil.ParseBytes(*memBudg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-mem-budget: %v\n", err)
		os.Exit(2)
	}

	known := map[string]bool{
		"table2": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "fig15": true, "fig16": true,
		"audit": true, "verify": true, "cache": true, "oracle": true, "soak": true,
		"hostile": true,
	}
	targets := flag.Args()
	if len(targets) == 0 && !*auditFlag {
		targets = []string{"table2"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	}
	if *auditFlag {
		targets = append(targets, "audit")
	}
	for _, t := range targets {
		if !known[t] {
			fmt.Fprintf(os.Stderr, "unknown target %q (want table2, fig9..fig16, audit, verify, cache, oracle, soak, hostile, or all)\n", t)
			os.Exit(2)
		}
	}
	if *mutate && !slices.Contains(targets, "verify") {
		fmt.Fprintln(os.Stderr, "-mutate only applies to the verify target")
		os.Exit(2)
	}

	// Profiling starts after argument validation so a typo can't leave a
	// truncated profile behind. Both profiles cover the whole run; the
	// deferred writers run on normal exit and on SIGINT (the signal only
	// cancels the context — main still returns normally).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("CPU profile written to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the heap profile reflects real retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("heap profile written to %s\n", *memprofile)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := expr.Config{Scale: *scale, Budget: *budget, Ctx: ctx, Workers: *workers,
		StrictHash: *strictHash, MemBudget: memBudget}

	verifyFailed := false
	for _, t := range targets {
		if ctx.Err() != nil {
			fmt.Printf("interrupted: skipping remaining targets from %s on\n", t)
			break
		}
		start := time.Now()
		switch t {
		case "table2":
			fmt.Print(expr.RenderTable2(expr.Table2(cfg)))
		case "fig9":
			fmt.Print(expr.RenderFig9(expr.Fig9(cfg, nil, nil)))
		case "fig10":
			fmt.Print(expr.RenderFig10(expr.Fig10(cfg, nil, nil)))
		case "fig11":
			fmt.Print(expr.RenderFig11(expr.Fig11(cfg, nil, nil)))
		case "fig12":
			fmt.Print(expr.RenderFig12(expr.Fig12(cfg, nil, nil, nil)))
		case "fig13":
			fmt.Print(expr.RenderFig13(expr.Fig13(cfg, nil)))
		case "fig14":
			fmt.Print(expr.RenderFig14(expr.Summarize(expr.Fig14(cfg, 10, 10))))
		case "fig15":
			fmt.Print(expr.RenderFig15(expr.Fig15(cfg, nil)))
		case "fig16":
			fmt.Print(expr.RenderFig16(expr.Fig16(cfg, nil)))
		case "audit":
			runAudit(ctx, cfg, *faultsN, *faultSeed, *headroom, *ckDir)
		case "verify":
			if !runVerify(ctx, cfg, *verifySeed, *mutate) {
				verifyFailed = true
			}
		case "cache":
			runCacheBench(ctx, cfg)
		case "oracle":
			if !runOracle(*oracleSeqs, *oracleSeed) {
				verifyFailed = true
			}
		case "soak":
			if !runSoak(ctx, soakConfig{
				URL:      *soakURL,
				Jobs:     *soakJobs,
				Seed:     *soakSeed,
				Poison:   *soakPois,
				Healthy:  *soakModel,
				SettleTo: *soakWait,
				HitP99:   *soakP99,
				MaxDegr:  *soakDegr,
			}) {
				verifyFailed = true
			}
		case "hostile":
			if !runHostile(ctx, hostileConfig{
				URL:      *hostileURL,
				Flood:    *hostileFlood,
				Good:     *hostileGood,
				GoodP95:  *hostileP95,
				SettleTo: *hostileSettle,
				Loris:    *hostileLoris,
			}) {
				verifyFailed = true
			}
		}
		if ctx.Err() != nil {
			fmt.Printf("(%s interrupted after %v; rows reflect best-so-far states)\n\n",
				t, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Printf("(%s took %v)\n\n", t, time.Since(start).Round(time.Millisecond))
	}
	if verifyFailed {
		os.Exit(1)
	}
}

// runOracle runs the differential evaluation oracle: incremental and
// from-scratch evaluation side by side on randomized rewrite sequences,
// asserting identical hashes, valid schedules, and consistent peaks (see
// opt.RunOracle). A non-empty mismatch list makes the process exit 1.
func runOracle(sequences int, seed int64) bool {
	rep := opt.RunOracle(opt.OracleConfig{
		Model: cost.NewModel(cost.RTX3090()),
		Graphs: []*graph.Graph{
			models.MLP(512, 64, 128, 10, 3).G,
			models.UNet(4, 64).G,
			models.TransformerLM("oracle-lm", 1, 8, 32, 2, 2, 128, tensor.TF32, false).G,
		},
		Sequences: sequences,
		Seed:      seed,
	})
	fmt.Print(rep)
	return rep.OK()
}

// verifySuite is the numeric-verification face of the seven evaluation
// workloads: same architectures as Table 2, shrunk until a pure-Go
// float64 execution of forward+backward+SGD finishes in seconds.
func verifySuite() []*models.Workload {
	return []*models.Workload{
		models.ResNet50Config(2, 32, []int{1, 1, 1, 1}),
		models.TransformerLM("BERT-mini", 2, 16, 64, 2, 4, 256, tensor.TF32, false),
		models.ViTBase(1, 16, 16),
		models.UNetConfig(1, 32, 8, 2),
		models.UNetPPConfig(1, 32, 8, 2),
		models.TransformerLM("GPT-Neo-mini", 1, 16, 64, 2, 4, 256, tensor.BF16, false),
		models.TransformerLM("BTLM-mini", 1, 16, 80, 2, 4, 256, tensor.BF16, false),
	}
}

// runVerify numerically verifies every suite workload: the graph is
// optimized under the usual memory objective, materialized, executed
// against its memory plan's concrete arena offsets, and cross-checked
// against the unoptimized graph on seeded inputs. With mutate set, the
// optimization step is skipped and one plan offset is corrupted instead —
// the checker must trap it, so a "failing" run is the expected outcome
// and the non-zero exit is what scripts/verify_mutation.sh asserts.
// Returns true when every report is clean.
func runVerify(ctx context.Context, cfg expr.Config, seed uint64, mutate bool) bool {
	m := cost.NewModel(cost.RTX3090())
	ok := true
	if mutate {
		fmt.Printf("mutation smoke: one corrupted plan offset per workload, seed %d\n", seed)
	} else {
		fmt.Printf("numeric plan verification: optimized vs reference execution, seed %d\n", seed)
	}
	for _, w := range verifySuite() {
		if ctx.Err() != nil {
			fmt.Println("interrupted: skipping remaining workloads")
			break
		}
		var rep *verify.Report
		if mutate {
			sc := &sched.Scheduler{}
			order := sc.ScheduleGraph(w.G)
			plan, err := memplan.Build(w.G, order)
			if err != nil {
				fmt.Printf("verify %s: FAIL — memplan: %v\n", w.Name, err)
				ok = false
				continue
			}
			desc, injected := verify.InjectOffsetFault(plan)
			if !injected {
				fmt.Printf("verify %s: FAIL — no concurrently-live blocks to corrupt\n", w.Name)
				ok = false
				continue
			}
			fmt.Printf("injected: %s\n", desc)
			rep = verify.CheckPlan(w.G, w.G, order, plan, seed)
			if rep.OK() {
				fmt.Printf("verify %s: injected fault went UNDETECTED\n", w.Name)
			}
		} else {
			base := opt.Baseline(w.G, m)
			res, err := opt.OptimizeCtx(ctx, w.G, m, opt.Options{
				Mode:          opt.MemoryUnderLatency,
				LatencyLimit:  base.Latency * 1.1,
				TimeBudget:    cfg.Budget,
				Workers:       cfg.Workers,
				MaxIterations: 60,
			})
			if err != nil {
				fmt.Printf("verify %s: FAIL — optimize: %v\n", w.Name, err)
				ok = false
				continue
			}
			mg, err := res.Best.FT.Materialize(res.Best.G)
			if err != nil {
				fmt.Printf("verify %s: FAIL — materialize: %v\n", w.Name, err)
				ok = false
				continue
			}
			rep = verify.Check(w.G, mg, seed)
		}
		rep.Workload = w.Name
		if !rep.OK() {
			ok = false
		}
		fmt.Print(rep)
	}
	return ok
}

// runAudit is the execution-feasibility harness: per workload it audits
// the baseline plan against a zero-headroom budget (the worst of the three
// peak estimators), replays it under the seeded fault scenarios, and walks
// the re-optimization ladder when the plan is infeasible. With ckDir set,
// each workload's ladder checkpoints into its own subdirectory: an
// interrupted audit re-run on the same path replays completed rungs
// instead of re-searching them.
func runAudit(ctx context.Context, cfg expr.Config, scenarios int, seed int64, headroom float64, ckDir string) {
	m := cost.NewModel(cost.RTX3090())
	b := func(n int) int {
		s := int(float64(n) * cfg.Scale)
		if s < 1 {
			return 1
		}
		return s
	}
	workloads := []*models.Workload{
		models.MLP(b(8192), 256, 512, 10, 4),
		models.UNet(b(32), 256),
	}
	fmt.Printf("execution-feasibility audit: %d fault scenario(s), seed %d, headroom %.0f%%\n",
		scenarios, seed, 100*headroom)
	fmt.Printf("%-16s %-10s %-12s %-10s %-12s %-10s %s\n",
		"workload", "budget", "rung", "peak", "latency", "audit", "replay")
	for _, w := range workloads {
		if ctx.Err() != nil {
			fmt.Println("interrupted: skipping remaining workloads")
			return
		}
		base := opt.Baseline(w.G, m)
		ar := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
		budget := ar.SchedPeak
		if ar.SimPeak > budget {
			budget = ar.SimPeak
		}
		if ar.ArenaSize > budget {
			budget = ar.ArenaSize
		}
		ro := robust.Options{
			Opt: opt.Options{
				Mode:       opt.LatencyUnderMemory,
				MemLimit:   budget,
				TimeBudget: cfg.Budget,
				Workers:    cfg.Workers,
			},
			Budget:       budget,
			Headroom:     headroom,
			Faults:       faults.Defaults(seed, scenarios),
			ReplayFaults: scenarios > 0,
			Initial:      &opt.Result{Best: base, Stopped: opt.StopConverged},
		}
		if ckDir != "" {
			ro.CheckpointDir = filepath.Join(ckDir, dirName(w.Name))
		}
		lad, err := robust.Reoptimize(ctx, w.G, m, ro)
		if err != nil {
			fmt.Printf("%-16s %v\n", w.Name, err)
			continue
		}
		last := lad.Attempts[len(lad.Attempts)-1]
		pass, warn, fail := 0, 0, 0
		for _, c := range last.Audit.Checks {
			switch c.Status {
			case faults.Pass:
				pass++
			case faults.Warn:
				warn++
			default:
				fail++
			}
		}
		rung := "none"
		if lad.Survived {
			rung = lad.Rung.String()
		}
		replay := "off"
		if last.Replay != nil {
			replay = fmt.Sprintf("%d/%d", last.Replay.Passed, len(last.Replay.Results))
		}
		fmt.Printf("%-16s %-10s %-12s %-10s %-12s %-10s %s\n",
			w.Name, fmt.Sprintf("%.2f GB", float64(budget)/(1<<30)), rung,
			fmt.Sprintf("%.2f GB", float64(lad.Best.PeakMem)/(1<<30)),
			fmt.Sprintf("%.2f ms", lad.Best.Latency*1e3),
			fmt.Sprintf("%dp/%dw/%df", pass, warn, fail), replay)
		if lad.CheckpointErr != "" {
			fmt.Printf("  checkpoint degraded: %s\n", lad.CheckpointErr)
		}
		if !lad.Survived {
			for _, c := range last.Audit.Failed() {
				fmt.Printf("  audit failure: [%s] %s: %s\n", c.Status, c.Name, c.Detail)
			}
			if last.Replay != nil && !last.Replay.OK() {
				fmt.Printf("  %s\n", last.Replay)
			}
		}
	}
}

// dirName makes a workload name filesystem-friendly.
func dirName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}
