// Command magis-bench regenerates the paper's evaluation tables and
// figures (Table 2, Figs. 9-16) on the simulated substrate.
//
// Usage:
//
//	magis-bench [-scale 0.25] [-budget 5s] table2 fig9 fig10 ... | all
//
// At -scale 1 and -budget 3m this is the paper's configuration; smaller
// values trade fidelity for runtime.
//
// SIGINT/SIGTERM cancels in-flight searches: the current target renders
// with whatever best-so-far states were reached, remaining targets are
// skipped, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"magis/internal/expr"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1, "workload batch scale factor (paper: 1)")
		budget = flag.Duration("budget", 5*time.Second, "MAGIS search budget per run (paper: 3m)")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintf(os.Stderr, "invalid -scale %v: must be in (0,1]\n", *scale)
		os.Exit(2)
	}

	known := map[string]bool{
		"table2": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "fig15": true, "fig16": true,
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"table2"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	}
	for _, t := range targets {
		if !known[t] {
			fmt.Fprintf(os.Stderr, "unknown target %q (want table2, fig9..fig16, or all)\n", t)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := expr.Config{Scale: *scale, Budget: *budget, Ctx: ctx}

	for _, t := range targets {
		if ctx.Err() != nil {
			fmt.Printf("interrupted: skipping remaining targets from %s on\n", t)
			break
		}
		start := time.Now()
		switch t {
		case "table2":
			fmt.Print(expr.RenderTable2(expr.Table2(cfg)))
		case "fig9":
			fmt.Print(expr.RenderFig9(expr.Fig9(cfg, nil, nil)))
		case "fig10":
			fmt.Print(expr.RenderFig10(expr.Fig10(cfg, nil, nil)))
		case "fig11":
			fmt.Print(expr.RenderFig11(expr.Fig11(cfg, nil, nil)))
		case "fig12":
			fmt.Print(expr.RenderFig12(expr.Fig12(cfg, nil, nil, nil)))
		case "fig13":
			fmt.Print(expr.RenderFig13(expr.Fig13(cfg, nil)))
		case "fig14":
			fmt.Print(expr.RenderFig14(expr.Summarize(expr.Fig14(cfg, 10, 10))))
		case "fig15":
			fmt.Print(expr.RenderFig15(expr.Fig15(cfg, nil)))
		case "fig16":
			fmt.Print(expr.RenderFig16(expr.Fig16(cfg, nil)))
		}
		if ctx.Err() != nil {
			fmt.Printf("(%s interrupted after %v; rows reflect best-so-far states)\n\n",
				t, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Printf("(%s took %v)\n\n", t, time.Since(start).Round(time.Millisecond))
	}
}
