// Command magis-bench regenerates the paper's evaluation tables and
// figures (Table 2, Figs. 9-16) on the simulated substrate.
//
// Usage:
//
//	magis-bench [-scale 0.25] [-budget 5s] [-workers N] table2 fig9 ... | all
//	magis-bench -cpuprofile cpu.pprof -memprofile mem.pprof fig15
//
// At -scale 1 and -budget 3m this is the paper's configuration; smaller
// values trade fidelity for runtime. -workers sets the search's parallel
// candidate evaluation (0 = GOMAXPROCS); profiles are written on exit and
// inspected with `go tool pprof`.
//
// SIGINT/SIGTERM cancels in-flight searches: the current target renders
// with whatever best-so-far states were reached, remaining targets are
// skipped, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"magis/internal/expr"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1, "workload batch scale factor (paper: 1)")
		budget     = flag.Duration("budget", 5*time.Second, "MAGIS search budget per run (paper: 3m)")
		workers    = flag.Int("workers", 0, "parallel candidate evaluations per search (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this path")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintf(os.Stderr, "invalid -scale %v: must be in (0,1]\n", *scale)
		os.Exit(2)
	}

	known := map[string]bool{
		"table2": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "fig15": true, "fig16": true,
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"table2"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	}
	for _, t := range targets {
		if !known[t] {
			fmt.Fprintf(os.Stderr, "unknown target %q (want table2, fig9..fig16, or all)\n", t)
			os.Exit(2)
		}
	}

	// Profiling starts after argument validation so a typo can't leave a
	// truncated profile behind. Both profiles cover the whole run; the
	// deferred writers run on normal exit and on SIGINT (the signal only
	// cancels the context — main still returns normally).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("CPU profile written to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the heap profile reflects real retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("heap profile written to %s\n", *memprofile)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := expr.Config{Scale: *scale, Budget: *budget, Ctx: ctx, Workers: *workers}

	for _, t := range targets {
		if ctx.Err() != nil {
			fmt.Printf("interrupted: skipping remaining targets from %s on\n", t)
			break
		}
		start := time.Now()
		switch t {
		case "table2":
			fmt.Print(expr.RenderTable2(expr.Table2(cfg)))
		case "fig9":
			fmt.Print(expr.RenderFig9(expr.Fig9(cfg, nil, nil)))
		case "fig10":
			fmt.Print(expr.RenderFig10(expr.Fig10(cfg, nil, nil)))
		case "fig11":
			fmt.Print(expr.RenderFig11(expr.Fig11(cfg, nil, nil)))
		case "fig12":
			fmt.Print(expr.RenderFig12(expr.Fig12(cfg, nil, nil, nil)))
		case "fig13":
			fmt.Print(expr.RenderFig13(expr.Fig13(cfg, nil)))
		case "fig14":
			fmt.Print(expr.RenderFig14(expr.Summarize(expr.Fig14(cfg, 10, 10))))
		case "fig15":
			fmt.Print(expr.RenderFig15(expr.Fig15(cfg, nil)))
		case "fig16":
			fmt.Print(expr.RenderFig16(expr.Fig16(cfg, nil)))
		}
		if ctx.Err() != nil {
			fmt.Printf("(%s interrupted after %v; rows reflect best-so-far states)\n\n",
				t, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Printf("(%s took %v)\n\n", t, time.Since(start).Round(time.Millisecond))
	}
}
