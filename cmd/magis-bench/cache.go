package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"magis/internal/cost"
	"magis/internal/expr"
	"magis/internal/opt"
	"magis/internal/plancache"
)

// runCacheBench measures the plan cache life cycle over the miniature
// evaluation suite: a cold search, verification-gated admission, an exact
// hit (served from disk, no search), and a warm-started search seeded by
// the cached plan under a smaller budget. It quantifies what the service
// buys from the cache: hits cost microseconds-to-milliseconds against
// seconds of search, and the admission cost is dominated by numeric
// verification — the price of never caching an unproven plan.
func runCacheBench(ctx context.Context, cfg expr.Config) {
	dir, err := os.MkdirTemp("", "magis-plancache-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir)
	cache, err := plancache.Open(plancache.Config{Dir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}

	m := cost.NewModel(cost.RTX3090())
	fmt.Println("plan cache: cold search vs verified admission vs exact hit vs warm start")
	fmt.Printf("%-14s %10s %10s %12s %10s %9s\n", "workload", "cold", "admit", "hit", "warm", "hit-x")
	for _, w := range verifySuite() {
		if ctx.Err() != nil {
			return
		}
		o := opt.Options{
			Mode:          opt.MemoryUnderLatency,
			TimeBudget:    cfg.Budget,
			MaxIterations: 60,
			Workers:       cfg.Workers,
		}
		base := opt.Baseline(w.G, m)
		o.LatencyLimit = base.Latency * 1.1
		fp := plancache.FingerprintFor(m, o)

		t0 := time.Now()
		res, err := opt.OptimizeCtx(ctx, w.G, m, o)
		if err != nil || res.Best == nil {
			fmt.Printf("%-14s search failed: %v\n", w.Name, err)
			continue
		}
		cold := time.Since(t0)

		t0 = time.Now()
		if err := cache.Put(w.G, fp, res.Best); err != nil {
			fmt.Printf("%-14s admission refused: %v\n", w.Name, err)
			continue
		}
		admit := time.Since(t0)

		t0 = time.Now()
		if _, ok := cache.Get(w.G, fp); !ok {
			fmt.Printf("%-14s exact lookup missed after Put\n", w.Name)
			continue
		}
		hit := time.Since(t0)

		// A tighter budget misses the exact key; the cached plan seeds
		// the search instead.
		o2 := o
		o2.MaxIterations = 20
		fp2 := plancache.FingerprintFor(m, o2)
		var seeds []*opt.State
		for _, nh := range cache.Near(w.G, fp2) {
			if st, serr := nh.Plan.Seed(); serr == nil {
				seeds = append(seeds, st)
			}
		}
		t0 = time.Now()
		if _, err := opt.OptimizeSeeded(ctx, w.G, m, o2, seeds...); err != nil {
			fmt.Printf("%-14s warm search failed: %v\n", w.Name, err)
			continue
		}
		warm := time.Since(t0)

		speedup := float64(cold) / float64(hit)
		fmt.Printf("%-14s %10s %10s %12s %10s %8.0fx\n",
			w.Name, cold.Round(time.Millisecond), admit.Round(time.Millisecond),
			hit.Round(time.Microsecond), warm.Round(time.Millisecond), speedup)
	}
	st := cache.Stats()
	fmt.Printf("cache: %d entries, %d puts, %d hits, %d near-hits, %d rejected, %d quarantined\n",
		st.Entries, st.Puts, st.Hits, st.NearHits, st.PutRejected, st.Quarantined)
}
