package main

// The soak target drives a live magis-serve instance through mixed,
// seeded traffic — hot cache hits, warm near-miss starts, cold searches,
// deadline-laden requests, and (optionally) a poisoned workload — and
// asserts the overload-protection invariants from the outside:
//
//   - every submitted job reaches a terminal state (no stuck jobs);
//   - the queue conserves work: admitted == completed + failed +
//     cancelled + shed, and the admission-cost ledger returns to zero;
//   - no unverified plan is passed off as verified, and every degraded
//     response is labeled with its fallback tier;
//   - the circuit breaker demonstrably isolates the poison workload while
//     healthy traffic keeps completing;
//   - SLO floors hold: cache-hit p99 latency and the degraded-response
//     rate stay under their bounds.
//
// scripts/soak_chaos.sh wraps this target with a server lifecycle,
// including a mid-flight SIGKILL and restart-recovery phase.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

type soakConfig struct {
	URL      string        // server base URL
	Jobs     int           // traffic volume (submission attempts)
	Seed     int64         // traffic mix seed
	Poison   string        // poisoned model name ("" = skip the breaker phase)
	Healthy  string        // healthy model for the breaker-isolation check
	SettleTo time.Duration // how long to wait for all jobs to settle
	HitP99   time.Duration // SLO floor: cache-hit p99 latency
	MaxDegr  float64       // SLO floor: degraded fraction of completed jobs
}

type soakClient struct {
	base string
	hc   *http.Client
}

func (c *soakClient) postOptimize(body map[string]any) (int, map[string]any, http.Header, error) {
	b, _ := json.Marshal(body)
	resp, err := c.hc.Post(c.base+"/optimize", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m, resp.Header, nil
}

func (c *soakClient) getJSON(path string) (map[string]any, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return m, nil
}

func (c *soakClient) metric(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

// soakViolations accumulates invariant failures; the run reports all of
// them, then fails once.
type soakViolations []string

func (v *soakViolations) addf(format string, args ...any) {
	*v = append(*v, fmt.Sprintf(format, args...))
}

// runSoak executes the soak; returns true when every invariant and SLO
// held.
func runSoak(ctx context.Context, cfg soakConfig) bool {
	c := &soakClient{base: strings.TrimRight(cfg.URL, "/"), hc: &http.Client{Timeout: 30 * time.Second}}
	var viol soakViolations

	if _, err := c.getJSON("/healthz"); err != nil {
		fmt.Printf("soak: server not reachable at %s: %v\n", cfg.URL, err)
		return false
	}
	fmt.Printf("soak: %d submissions against %s (seed %d, poison %q)\n",
		cfg.Jobs, cfg.URL, cfg.Seed, cfg.Poison)

	// Phase 1 — breaker isolation (deterministic preamble). Fail the
	// poisoned workload until its breaker opens, then prove the door is
	// shut for poison while a healthy job still completes.
	if cfg.Poison != "" {
		soakBreakerPhase(ctx, c, cfg, &viol)
	}

	// Phase 2 — seeded mixed traffic.
	ids := soakTraffic(ctx, c, cfg, &viol)

	// Phase 3 — settle and check invariants.
	soakSettle(ctx, c, cfg, ids, &viol)

	if len(viol) > 0 {
		fmt.Printf("soak: %d invariant violation(s):\n", len(viol))
		for _, v := range viol {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
		return false
	}
	fmt.Println("soak: all invariants and SLO floors held")
	return true
}

func soakBreakerPhase(ctx context.Context, c *soakClient, cfg soakConfig, viol *soakViolations) {
	fmt.Printf("soak: breaker phase — poisoning %s until the breaker opens\n", cfg.Poison)
	deadline := time.Now().Add(cfg.SettleTo)
	tripped := false
	for time.Now().Before(deadline) && ctx.Err() == nil {
		code, body, _, err := c.postOptimize(map[string]any{"model": cfg.Poison, "budget": "1s"})
		if err != nil {
			viol.addf("breaker phase: submit error: %v", err)
			return
		}
		if code == http.StatusServiceUnavailable {
			tripped = true // breaker open: rejected at the door
			break
		}
		if code != http.StatusAccepted {
			viol.addf("breaker phase: poison submit got %d (%v)", code, body)
			return
		}
		// Wait for this poison job to settle so failures are consecutive.
		id, _ := body["id"].(string)
		soakAwaitTerminal(ctx, c, id, 30*time.Second)
		time.Sleep(50 * time.Millisecond)
	}
	if !tripped {
		viol.addf("breaker never opened for poisoned model %s", cfg.Poison)
		return
	}
	m, err := c.getJSON("/metrics")
	if err != nil || c.metric(m, "breaker_trips") < 1 {
		viol.addf("breaker_trips = %v after poison phase, want >= 1", m["breaker_trips"])
	}
	// Healthy traffic must flow while the poison workload is locked out.
	code, body, _, err := c.postOptimize(map[string]any{
		"model": cfg.Healthy, "scale": 0.01, "budget": "5s", "iterations": 10, "workers": 1,
	})
	if err != nil || code != http.StatusAccepted {
		viol.addf("healthy submit during open breaker: code %d err %v (%v)", code, err, body)
		return
	}
	id, _ := body["id"].(string)
	state := soakAwaitTerminal(ctx, c, id, 60*time.Second)
	if state != "done" {
		viol.addf("healthy job %s settled %q during open breaker, want done", id, state)
	} else {
		fmt.Println("soak: breaker open for poison; healthy job completed — isolation holds")
	}
}

// soakTraffic submits the seeded mix and returns the accepted job IDs.
func soakTraffic(ctx context.Context, c *soakClient, cfg soakConfig, viol *soakViolations) []string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ids []string
	rejected := 0
	for i := 0; i < cfg.Jobs && ctx.Err() == nil; i++ {
		req := map[string]any{"model": cfg.Healthy, "workers": 1}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // hot: identical cacheable request -> hits after the first
			req["scale"] = 0.01
			req["budget"] = "5s"
			req["iterations"] = 10
		case 4, 5: // warm: same graph, different budget
			req["scale"] = 0.01
			req["budget"] = fmt.Sprintf("%dms", 4000+rng.Intn(4)*500)
			req["iterations"] = 10
		case 6, 7: // cold-ish: different scale (different graph)
			req["scale"] = 0.01 + float64(rng.Intn(4))*0.005
			req["budget"] = "2s"
			req["iterations"] = 8
		case 8: // deadline-laden long search: degraded anytime result or shed
			req["scale"] = 0.02 + float64(rng.Intn(3))*0.01
			req["budget"] = "60s"
			req["deadline"] = fmt.Sprintf("%dms", 2000+rng.Intn(1500))
			req["iterations"] = 5000
		default: // verified request: the no-tamper invariant rides on these
			req["scale"] = 0.01
			req["budget"] = "5s"
			req["iterations"] = 10
			req["verify"] = true
		}
		code, body, hdr, err := c.postOptimize(req)
		if err != nil {
			viol.addf("traffic submit %d: %v", i, err)
			continue
		}
		switch code {
		case http.StatusAccepted:
			if id, ok := body["id"].(string); ok {
				ids = append(ids, id)
			} else {
				viol.addf("202 without job id: %v", body)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
			if hdr.Get("Retry-After") == "" && code == http.StatusTooManyRequests {
				viol.addf("429 without Retry-After header (submission %d)", i)
			}
			// Honor the hint loosely: brief backoff keeps the soak moving.
			time.Sleep(100 * time.Millisecond)
		case http.StatusUnprocessableEntity:
			rejected++ // infeasible deadline: a legitimate door rejection
		default:
			viol.addf("submission %d: unexpected status %d (%v)", i, code, body)
		}
		time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
	}
	fmt.Printf("soak: %d accepted, %d rejected at the door\n", len(ids), rejected)
	return ids
}

// soakAwaitTerminal polls one job to a terminal state; returns the state
// ("" on timeout).
func soakAwaitTerminal(ctx context.Context, c *soakClient, id string, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		v, err := c.getJSON("/jobs/" + id)
		if err == nil {
			switch v["state"] {
			case "done", "failed", "cancelled", "shed":
				return v["state"].(string)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return ""
}

func soakSettle(ctx context.Context, c *soakClient, cfg soakConfig, ids []string, viol *soakViolations) {
	// Every job terminal: the no-stuck-job invariant.
	terminal := map[string]int{}
	for _, id := range ids {
		state := soakAwaitTerminal(ctx, c, id, cfg.SettleTo)
		if state == "" {
			viol.addf("job %s never reached a terminal state", id)
			continue
		}
		terminal[state]++

		v, err := c.getJSON("/jobs/" + id)
		if err != nil {
			viol.addf("job %s: %v", id, err)
			continue
		}
		// Label invariants: shed jobs say why; degraded results carry a
		// tier; verified claims only on verified paths.
		if state == "shed" {
			if msg, _ := v["error"].(string); !strings.Contains(msg, "shed") {
				viol.addf("job %s shed without a shed label: %q", id, msg)
			}
		}
		if res, ok := v["result"].(map[string]any); ok {
			if res["degraded"] == true {
				tier, _ := res["degraded_tier"].(string)
				if tier != "best-so-far" && tier != "baseline" {
					viol.addf("job %s degraded with unknown tier %q", id, tier)
				}
			}
		}
	}
	fmt.Printf("soak: terminal states: %v\n", terminal)

	// Wait for the server to go quiet, then audit the books.
	quietBy := time.Now().Add(cfg.SettleTo)
	var hz map[string]any
	for time.Now().Before(quietBy) && ctx.Err() == nil {
		var err error
		hz, err = c.getJSON("/healthz")
		if err == nil && c.metric(hz, "queue_depth") == 0 && c.metric(hz, "in_flight") == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hz == nil || c.metric(hz, "queue_depth") != 0 || c.metric(hz, "in_flight") != 0 {
		viol.addf("server never went quiet: %v", hz)
		return
	}
	if held := c.metric(hz, "cost_in_use_ms"); held != 0 {
		viol.addf("admission cost leaked: cost_in_use_ms=%v after quiesce", held)
	}

	m, err := c.getJSON("/metrics")
	if err != nil {
		viol.addf("metrics: %v", err)
		return
	}
	admitted := c.metric(m, "admitted")
	settled := c.metric(m, "completed") + c.metric(m, "failed") + c.metric(m, "cancelled") +
		c.metric(m, "shed_expired") + c.metric(m, "shed_evicted")
	if admitted != settled {
		viol.addf("queue conservation violated: admitted %v != settled %v", admitted, settled)
	}

	// SLO floors.
	if hl, ok := m["cache_hit_latency_sec"].(map[string]any); ok {
		if cnt, _ := hl["count"].(float64); cnt > 0 {
			if p99, _ := hl["p99"].(float64); p99 > cfg.HitP99.Seconds() {
				viol.addf("SLO: cache-hit p99 %.3fs exceeds floor %v", p99, cfg.HitP99)
			}
		}
	}
	if done := c.metric(m, "completed"); done > 0 {
		if rate := c.metric(m, "degraded") / done; rate > cfg.MaxDegr {
			viol.addf("SLO: degraded rate %.2f exceeds floor %.2f", rate, cfg.MaxDegr)
		}
	}
	fmt.Printf("soak: admitted=%v completed=%v failed=%v cancelled=%v shed=%v+%v degraded=%v breaker_trips=%v\n",
		admitted, m["completed"], m["failed"], m["cancelled"],
		m["shed_expired"], m["shed_evicted"], m["degraded"], m["breaker_trips"])
}
