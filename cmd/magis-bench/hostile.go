package main

// The hostile target drives a live magis-serve instance with adversarial
// traffic — malformed bodies, hostile graph documents, a slow-loris
// connection, and a single-tenant flood — and asserts the
// hostile-traffic invariants from the outside:
//
//   - every corpus request settles as a structured 4xx (an "error" plus a
//     machine-readable "reason"), never a 5xx, never an admitted job;
//   - a slow-loris connection is evicted by the server's socket
//     deadlines instead of holding a connection slot forever;
//   - under a single-tenant flood, a well-behaved client's success rate
//     and response latency hold (fair-share isolation), and the bully is
//     throttled rather than served or crashed;
//   - afterwards the server is intact: a well-formed graph submission
//     completes with a full-fidelity result, the books balance
//     (admitted == settled, admission cost back to zero), and every
//     per-client ledger is drained.
//
// scripts/hostile_chaos.sh wraps this target with a server lifecycle
// configured with tight limits.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"magis/internal/graphio"
	"magis/internal/models"
)

// jsonDecodeBody drains and decodes a response body (errors are the
// caller's concern only when the body matters).
func jsonDecodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// jsonRaw embeds pre-serialized JSON in a map destined for json.Marshal.
func jsonRaw(s string) json.RawMessage { return json.RawMessage(s) }

type hostileConfig struct {
	URL      string        // server base URL
	Flood    int           // bully submissions
	Good     int           // well-behaved submissions riding through the flood
	GoodP95  time.Duration // SLO floor: good client's p95 HTTP response time
	SettleTo time.Duration // how long to wait for the server to go quiet
	Loris    bool          // run the slow-loris phase (needs server read timeouts)
}

// hostileCorpus is the malformed/hostile request body corpus. Every entry
// must be refused with the expected status class; "reason" pins the
// machine-readable code where one specific reason is the contract.
var hostileCorpus = []struct {
	name   string
	body   string
	status int    // expected exact status (0 = any 4xx)
	reason string // expected reason code ("" = any)
}{
	{"empty body", ``, 0, ""},
	{"not json", `this is not json`, 400, "syntax"},
	{"truncated json", `{"model":"mlp"`, 400, "syntax"},
	{"unknown field", `{"model":"mlp","exploit":true}`, 400, "unknown-field"},
	{"unknown model", `{"model":"../../etc/passwd"}`, 400, "invalid"},
	{"negative scale", `{"model":"mlp","scale":-1}`, 400, "invalid"},
	{"hostile client id", `{"model":"mlp","client":"a b"}`, 400, "client"},
	{"graph and model", `{"model":"mlp","graph":{"magic":"magis-graph","version":1,"nodes":[]}}`, 400, "invalid"},
	{"graph wrong magic", `{"graph":{"magic":"evil","version":1,"nodes":[]}}`, 400, "header"},
	{"graph unknown envelope field", `{"graph":{"magic":"magis-graph","version":1,"nodes":[],"exploit":1}}`, 400, "unknown-field"},
	{"graph duplicate id", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Input","out":[2],"dtype":0}},
		{"id":1,"op":{"kind":"Input","out":[2],"dtype":0}}]}}`, 400, "duplicate-id"},
	{"graph dangling input", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"ReLU","ins":[[2]],"out":[2],"dtype":0,"links":[[{"In":1,"Out":1}]]},"ins":[99]}]}}`, 400, "dangling-input"},
	{"graph unknown op", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Exploit","out":[2],"dtype":0}}]}}`, 400, "unknown-op"},
	{"graph bad dtype", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Input","out":[2],"dtype":250}}]}}`, 400, "dtype"},
	{"graph negative dim", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Input","out":[-8],"dtype":0}}]}}`, 400, "bad-shape"},
	{"graph overflow shape", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Input","out":[2147483647,2147483647,2147483647],"dtype":0}}]}}`, 400, "bad-shape"},
	{"graph hostile link", `{"graph":{"magic":"magis-graph","version":1,"nodes":[
		{"id":1,"op":{"kind":"Input","out":[2],"dtype":0}},
		{"id":2,"op":{"kind":"ReLU","ins":[[2]],"out":[2],"dtype":0,"links":[[{"In":9,"Out":1}]]},"ins":[1]}]}}`, 400, "bad-link"},
}

// runHostile executes the adversarial harness; returns true when every
// invariant held.
func runHostile(ctx context.Context, cfg hostileConfig) bool {
	c := &soakClient{base: strings.TrimRight(cfg.URL, "/"), hc: &http.Client{Timeout: 30 * time.Second}}
	var viol soakViolations

	if _, err := c.getJSON("/healthz"); err != nil {
		fmt.Printf("hostile: server not reachable at %s: %v\n", cfg.URL, err)
		return false
	}
	fmt.Printf("hostile: corpus of %d attacks, flood of %d vs %d good requests, against %s\n",
		len(hostileCorpus), cfg.Flood, cfg.Good, cfg.URL)

	hostileCorpusPhase(ctx, c, &viol)
	if cfg.Loris {
		hostileLorisPhase(c, &viol)
	}
	goodIDs := hostileFloodPhase(ctx, c, cfg, &viol)
	hostileSettlePhase(ctx, c, cfg, goodIDs, &viol)

	if len(viol) > 0 {
		fmt.Printf("hostile: %d invariant violation(s):\n", len(viol))
		for _, v := range viol {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
		return false
	}
	fmt.Println("hostile: all invariants held")
	return true
}

// hostileCorpusPhase fires every corpus attack and requires a structured
// 4xx for each: right status, right reason, an error message, no 5xx.
func hostileCorpusPhase(ctx context.Context, c *soakClient, viol *soakViolations) {
	fmt.Println("hostile: corpus phase")
	for _, tc := range hostileCorpus {
		if ctx.Err() != nil {
			return
		}
		resp, err := c.hc.Post(c.base+"/optimize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			viol.addf("corpus %q: transport error: %v", tc.name, err)
			continue
		}
		var body map[string]any
		_ = jsonDecodeBody(resp, &body)
		switch {
		case resp.StatusCode >= 500:
			viol.addf("corpus %q: got 5xx %d (%v)", tc.name, resp.StatusCode, body)
		case resp.StatusCode < 400:
			viol.addf("corpus %q: accepted with %d (%v)", tc.name, resp.StatusCode, body)
		case tc.status != 0 && resp.StatusCode != tc.status:
			viol.addf("corpus %q: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			viol.addf("corpus %q: rejection carries no error message (%v)", tc.name, body)
		}
		if tc.reason != "" {
			if r, _ := body["reason"].(string); r != tc.reason {
				viol.addf("corpus %q: reason %q, want %q (%v)", tc.name, body["reason"], tc.reason, body["error"])
			}
		}
	}
	// An oversized body (independent of JSON content) must be a 413.
	huge := `{"model":"mlp","budget":"` + strings.Repeat("x", 32<<20) + `"}`
	resp, err := c.hc.Post(c.base+"/optimize", "application/json", strings.NewReader(huge))
	if err == nil {
		var body map[string]any
		_ = jsonDecodeBody(resp, &body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			viol.addf("oversized body: status %d, want 413 (%v)", resp.StatusCode, body)
		}
	}
	// The server must still be healthy after the whole corpus.
	if hz, err := c.getJSON("/healthz"); err != nil || hz["status"] != "ok" {
		viol.addf("server unhealthy after corpus: %v (%v)", hz, err)
	}
}

// hostileLorisPhase dribbles a request header over a raw connection and
// requires the server to hang up on its own initiative.
func hostileLorisPhase(c *soakClient, viol *soakViolations) {
	fmt.Println("hostile: slow-loris phase")
	u, err := url.Parse(c.base)
	if err != nil {
		viol.addf("slow-loris: bad base URL %q: %v", c.base, err)
		return
	}
	conn, err := net.DialTimeout("tcp", u.Host, 5*time.Second)
	if err != nil {
		viol.addf("slow-loris: dial: %v", err)
		return
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /optimize HT")); err != nil {
		viol.addf("slow-loris: write: %v", err)
		return
	}
	// Eviction = the server answers (408) and/or closes; the only failure
	// is our own read deadline firing with the server still waiting.
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	buf := make([]byte, 512)
	_, err = conn.Read(buf)
	for err == nil {
		_, err = conn.Read(buf)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		viol.addf("slow-loris connection survived 30s: server read timeouts not enforced")
		return
	}
	// The connection slot freed up: an honest request still lands.
	if _, err := c.getJSON("/healthz"); err != nil {
		viol.addf("healthz failed right after slow-loris eviction: %v", err)
	}
}

// hostileFloodPhase floods from the "bully" identity while the "good"
// identity paces modest requests, and asserts fair-share isolation: good
// requests all land with bounded latency, the bully collects 429s, and
// nobody sees a 5xx. Returns the good client's job IDs.
func hostileFloodPhase(ctx context.Context, c *soakClient, cfg hostileConfig, viol *soakViolations) []string {
	fmt.Println("hostile: flood phase")
	post := func(client, body string) (int, map[string]any, time.Duration, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/optimize", strings.NewReader(body))
		if err != nil {
			return 0, nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Magis-Client", client)
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			return 0, nil, time.Since(start), err
		}
		var m map[string]any
		_ = jsonDecodeBody(resp, &m)
		return resp.StatusCode, m, time.Since(start), nil
	}
	job := `{"model":"mlp","scale":0.01,"budget":"2s","iterations":8,"workers":1}`

	var wg sync.WaitGroup
	var mu sync.Mutex
	bullyAccepted, bullyRejected, server5xx := 0, 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < cfg.Flood && ctx.Err() == nil; i++ {
			code, _, _, err := post("bully", job)
			mu.Lock()
			switch {
			case err != nil:
				// transport errors under flood are the client's own timeout
			case code >= 500:
				server5xx++
			case code == http.StatusAccepted:
				bullyAccepted++
			case code == http.StatusTooManyRequests:
				bullyRejected++
			}
			mu.Unlock()
			time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
		}
	}()

	var goodIDs []string
	var goodLat []time.Duration
	goodOK := 0
	for i := 0; i < cfg.Good && ctx.Err() == nil; i++ {
		time.Sleep(300 * time.Millisecond) // paced well inside any sane rate limit
		code, body, lat, err := post("good", job)
		if err != nil {
			viol.addf("good request %d: transport error: %v", i, err)
			continue
		}
		goodLat = append(goodLat, lat)
		switch {
		case code == http.StatusAccepted:
			goodOK++
			if id, ok := body["id"].(string); ok {
				goodIDs = append(goodIDs, id)
			}
		case code >= 500:
			viol.addf("good request %d: 5xx %d (%v)", i, code, body)
		default:
			viol.addf("good request %d rejected with %d during flood: %v", i, code, body)
		}
	}
	wg.Wait()

	if server5xx > 0 {
		viol.addf("flood produced %d server 5xx responses", server5xx)
	}
	if goodOK < cfg.Good {
		viol.addf("good client landed %d/%d requests during the flood", goodOK, cfg.Good)
	}
	if bullyRejected == 0 {
		viol.addf("bully was never throttled (%d accepted, 0 rejected)", bullyAccepted)
	}
	if len(goodLat) > 0 {
		sort.Slice(goodLat, func(i, j int) bool { return goodLat[i] < goodLat[j] })
		p95 := goodLat[len(goodLat)*95/100]
		if p95 > cfg.GoodP95 {
			viol.addf("good client p95 response time %v exceeds floor %v under flood", p95.Round(time.Millisecond), cfg.GoodP95)
		}
		fmt.Printf("hostile: flood done — bully %d accepted / %d throttled; good %d/%d landed, p95 %v\n",
			bullyAccepted, bullyRejected, goodOK, cfg.Good, p95.Round(time.Millisecond))
	}
	return goodIDs
}

// hostileSettlePhase proves the server survived intact: the good client's
// jobs settle, a well-formed graph submission completes with a
// full-fidelity (non-degraded) result, and the books balance down to the
// per-client ledgers.
func hostileSettlePhase(ctx context.Context, c *soakClient, cfg hostileConfig, goodIDs []string, viol *soakViolations) {
	fmt.Println("hostile: settle phase")
	for _, id := range goodIDs {
		if state := soakAwaitTerminal(ctx, c, id, cfg.SettleTo); state != "done" && state != "shed" {
			viol.addf("good job %s settled %q, want done (or shed under load)", id, state)
		}
	}

	// A well-formed graph document through the full ingestion pipeline.
	w, err := models.ByName("mlp", 1)
	if err != nil {
		viol.addf("build workload: %v", err)
		return
	}
	var doc strings.Builder
	if err := graphio.Save(&doc, w.G, nil); err != nil {
		viol.addf("serialize workload: %v", err)
		return
	}
	code, body, _, err := c.postOptimize(map[string]any{
		"graph": jsonRaw(doc.String()), "budget": "5s", "iterations": 10, "workers": 1,
	})
	if err != nil || code != http.StatusAccepted {
		viol.addf("well-formed graph submission: code %d err %v (%v)", code, err, body)
		return
	}
	id, _ := body["id"].(string)
	if state := soakAwaitTerminal(ctx, c, id, cfg.SettleTo); state != "done" {
		viol.addf("graph job %s settled %q, want done", id, state)
	} else if v, err := c.getJSON("/jobs/" + id); err == nil {
		if res, ok := v["result"].(map[string]any); !ok || res["degraded"] == true {
			viol.addf("graph job %s did not produce a full-fidelity result: %v", id, v["result"])
		}
	}

	// Quiesce, then audit the books.
	quietBy := time.Now().Add(cfg.SettleTo)
	var hz map[string]any
	for time.Now().Before(quietBy) && ctx.Err() == nil {
		hz, err = c.getJSON("/healthz")
		if err == nil && c.metric(hz, "queue_depth") == 0 && c.metric(hz, "in_flight") == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hz == nil || c.metric(hz, "queue_depth") != 0 || c.metric(hz, "in_flight") != 0 {
		viol.addf("server never went quiet: %v", hz)
		return
	}
	if held := c.metric(hz, "cost_in_use_ms"); held != 0 {
		viol.addf("admission cost leaked: cost_in_use_ms=%v after quiesce", held)
	}
	m, err := c.getJSON("/metrics")
	if err != nil {
		viol.addf("metrics: %v", err)
		return
	}
	admitted := c.metric(m, "admitted")
	settled := c.metric(m, "completed") + c.metric(m, "failed") + c.metric(m, "cancelled") +
		c.metric(m, "shed_expired") + c.metric(m, "shed_evicted")
	if admitted != settled {
		viol.addf("queue conservation violated: admitted %v != settled %v", admitted, settled)
	}
	clients, _ := m["clients"].(map[string]any)
	if clients == nil {
		viol.addf("per-client metrics absent after flood")
		return
	}
	for name, raw := range clients {
		cm, _ := raw.(map[string]any)
		if cm == nil {
			continue
		}
		if held, _ := cm["cost_held_ms"].(float64); held != 0 {
			viol.addf("client %q ledger not drained: cost_held_ms=%v", name, held)
		}
		if jobs, _ := cm["jobs_unsettled"].(float64); jobs != 0 {
			viol.addf("client %q ledger not drained: jobs_unsettled=%v", name, jobs)
		}
	}
	if clients["bully"] == nil || clients["good"] == nil {
		viol.addf("flood identities missing from per-client metrics: %v", clients)
	}
	fmt.Printf("hostile: books balanced — admitted=%v settled=%v, %d client ledger(s) drained\n",
		admitted, settled, len(clients))
}
