// Command magis-serve runs the MAGIS optimizer as a supervised service: an
// HTTP front-end over a bounded job queue with admission control, per-job
// panic isolation, a stall watchdog, and crash-safe drain.
//
// Usage:
//
//	magis-serve -addr :8080 -queue 8 -jobs 2 -checkpoint-dir /var/lib/magis \
//	            -cache-dir /var/lib/magis/plans
//
// Endpoints:
//
//	POST /optimize   submit a job: {"model":"bert","mode":"mem","budget":"30s"}
//	                 202 + job id; 429 when the queue is full; 503 draining
//	GET  /jobs/{id}  job state, progress, and result
//	GET  /healthz    liveness + queue depth, capacity, in-flight jobs
//	GET  /metrics    service counters (admissions, rejections, stalls, ...)
//
// SIGTERM/SIGINT drains: admission stops, in-flight searches are cancelled
// (each writes a final checkpoint), and the process exits once the workers
// stop. Restarting with the same -checkpoint-dir re-admits interrupted
// jobs and resumes them from their snapshots.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"magis/internal/cliutil"
	"magis/internal/cost"
	"magis/internal/errfs"
	"magis/internal/fsatomic"
	"magis/internal/ingest"
	"magis/internal/plancache"
	"magis/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 8, "admission queue depth (a full queue rejects with 429)")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently")
		budget   = flag.Duration("budget", 10*time.Second, "default per-job search budget")
		maxBudg  = flag.Duration("max-budget", 5*time.Minute, "largest budget a request may ask for")
		ckDir    = flag.String("checkpoint-dir", "", "job checkpoint directory (enables crash-safe jobs and restart recovery)")
		ckEvery  = flag.Int("checkpoint-every", 0, "checkpoint flush cadence in expansions (0 = default)")
		stall    = flag.Duration("stall-window", 30*time.Second, "cancel a job with no expansion progress for this long (negative disables)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for jobs to checkpoint and stop")
		cacheDir = flag.String("cache-dir", "", "persistent plan cache directory (enables verified-plan reuse, warm starts, and single-flight dedup)")
		cacheMax = flag.Int("cache-max", 0, "plan cache entry cap before eviction (0 = default)")
		admitBdg = flag.Duration("admit-budget", 0, "concurrent-cost admission budget in estimated service time (0 = 2x(queue+jobs)xbudget)")
		brkThr   = flag.Int("breaker-threshold", 0, "consecutive failures that open a workload's circuit breaker (0 = default 3, negative disables)")
		brkCool  = flag.Duration("breaker-cooloff", 0, "how long an open breaker rejects its workload before a half-open probe (0 = default 30s)")
		poison   = flag.String("chaos-poison-model", "", "fault injection: every search of this model fails (chaos soak only)")
		memBudg  = flag.String("mem-budget", "", "soft live-memory budget per search (e.g. 512MiB); over budget a search sheds state and settles best-so-far (empty = off)")
		stThr    = flag.Int("storage-threshold", 0, "consecutive storage faults before serving degrades to uncached/uncheckpointed (0 = default 3, negative disables)")
		stCool   = flag.Duration("storage-cooloff", 0, "how long degraded storage waits before a recovery probe (0 = default 30s)")
		gcAge    = flag.Duration("ckpt-gc-age", 0, "GC orphaned checkpoints older than this at restart (0 = default 24h, negative disables)")
		gcMax    = flag.Int("ckpt-gc-max", 0, "keep at most this many orphaned checkpoints at restart, oldest GCed first (0 = default 64, negative disables)")
		stFaults = flag.String("chaos-storage-faults", "", "fault injection: storage fault specs, e.g. enospc@3+2,syncfail~0.1 (chaos only; see internal/errfs)")
		stSeed   = flag.Int64("chaos-storage-seed", 1, "seed for rate-based storage fault specs")
		// Hostile-traffic protections: socket deadlines, body bounds,
		// ingestion limits, and per-client fairness.
		maxBody   = flag.String("max-body", "", "largest /optimize request body (e.g. 8MiB; empty = default 8MiB)")
		rhTimeout = flag.Duration("read-header-timeout", cliutil.DefaultHTTPTimeouts().ReadHeader, "evict clients that dribble request headers (0 disables)")
		rdTimeout = flag.Duration("read-timeout", cliutil.DefaultHTTPTimeouts().Read, "bound reading a full request including the body (0 disables)")
		wrTimeout = flag.Duration("write-timeout", cliutil.DefaultHTTPTimeouts().Write, "bound writing a response (0 disables)")
		idTimeout = flag.Duration("idle-timeout", cliutil.DefaultHTTPTimeouts().Idle, "close idle keep-alive connections after this long (0 disables)")
		cliRate   = flag.Float64("client-rate", 0, "per-client request rate limit in requests/sec (0 disables)")
		cliBurst  = flag.Int("client-burst", 0, "per-client rate-limit burst (0 = default 8 when -client-rate is set)")
		cliShare  = flag.Float64("client-share", 0, "one client's fair-share fraction of -admit-budget, in (0,1] (0 disables)")
		cliQueue  = flag.Int("client-queue", 0, "per-client cap on queued jobs (0 disables)")
		maxNodes  = flag.Int("max-graph-nodes", 0, "largest node count a submitted graph may have (0 = ingest default)")
		maxFanOut = flag.Int("max-graph-fanout", 0, "largest consumer fan-out a submitted graph node may have (0 = ingest default)")
	)
	flag.Parse()

	timeouts := cliutil.HTTPTimeouts{
		ReadHeader: *rhTimeout, Read: *rdTimeout, Write: *wrTimeout, Idle: *idTimeout,
	}
	if err := timeouts.Validate(); err != nil {
		log.Fatal(err)
	}
	if *cliShare < 0 || *cliShare > 1 {
		log.Fatalf("invalid -client-share %v: must be in [0,1]", *cliShare)
	}
	if *cliRate < 0 {
		log.Fatalf("invalid -client-rate %v: must be >= 0", *cliRate)
	}
	maxBodyBytes, err := cliutil.ParseBytes(*maxBody)
	if err != nil {
		log.Fatalf("-max-body: %v", err)
	}

	memBudget, err := cliutil.ParseBytes(*memBudg)
	if err != nil {
		log.Fatalf("-mem-budget: %v", err)
	}
	// The fault-injecting filesystem wraps every persistence touch — the
	// plan cache and the checkpoint writers share one injector so an
	// operation-count spec fires against the service's real disk schedule.
	var fsys fsatomic.FS
	if *stFaults != "" {
		rules, err := errfs.ParseSpecs(*stFaults)
		if err != nil {
			log.Fatalf("-chaos-storage-faults: %v", err)
		}
		fsys = errfs.New(nil, *stSeed, rules...)
		log.Printf("CHAOS: storage faults injected (%s, seed %d)", *stFaults, *stSeed)
	}

	model := cost.NewModel(cost.RTX3090())
	var cache *plancache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = plancache.Open(plancache.Config{Dir: *cacheDir, MaxEntries: *cacheMax, Logf: log.Printf, FS: fsys})
		if err != nil {
			// A broken cache directory degrades the service to uncached
			// operation; it must not keep the optimizer down.
			log.Printf("plan cache disabled: %v", err)
			cache = nil
		} else {
			st := cache.Stats()
			log.Printf("plan cache open at %s: %d entries, %d quarantined on scan", *cacheDir, st.Entries, st.Quarantined)
		}
	}

	s := serve.New(serve.Config{
		Model:            model,
		QueueDepth:       *queue,
		Workers:          *jobs,
		DefaultBudget:    *budget,
		MaxBudget:        *maxBudg,
		CheckpointDir:    *ckDir,
		CheckpointEveryN: *ckEvery,
		StallWindow:      *stall,
		Cache:            cache,
		AdmitBudget:      *admitBdg,
		BreakerThreshold: *brkThr,
		BreakerCooloff:   *brkCool,
		FailModel:        *poison,
		FS:               fsys,
		MemBudget:        memBudget,
		StorageThreshold: *stThr,
		StorageCooloff:   *stCool,
		CheckpointGCAge:  *gcAge,
		CheckpointGCMax:  *gcMax,
		MaxBody:          maxBodyBytes,
		Ingest:           ingest.Limits{MaxNodes: *maxNodes, MaxFanOut: *maxFanOut},
		ClientRate:       *cliRate,
		ClientBurst:      *cliBurst,
		ClientShare:      *cliShare,
		ClientQueue:      *cliQueue,
		Logf:             log.Printf,
	})
	if *poison != "" {
		log.Printf("CHAOS: model %q is poisoned; every search of it will fail", *poison)
	}
	if n := s.Start(); n > 0 {
		log.Printf("recovered %d checkpointed job(s) from %s", n, *ckDir)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	timeouts.Apply(hs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("magis-serve listening on %s", *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, cancel in-flight searches (each
	// writes its final checkpoint), then close the listener.
	log.Printf("signal received; draining (timeout %v)", *drainT)
	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hs.Shutdown(sctx)
	log.Printf("drained; exiting")
}
