// Command magis optimizes one workload's training graph under a memory or
// latency constraint and prints the result, mirroring the optimization
// modes of §6.2.
//
// Usage:
//
//	magis -model bert -mode mem -limit 0.10 -budget 30s
//	magis -model unet -mode latency -limit 0.6 -budget 1m
//
// With -mode mem, -limit is the allowed latency overhead (0.10 = +10%) and
// peak memory is minimized; with -mode latency, -limit is the memory ratio
// vs the unoptimized baseline (0.6 = 60%) and latency is minimized.
//
// -audit cross-validates the optimized plan's three peak estimators
// (differential plan audit) and walks the adaptive re-optimization ladder
// if the plan is infeasible; -faults N additionally replays the plan under
// N seeded fault scenarios (cost-model noise, swap-bandwidth degradation,
// transient transfer failures, co-tenant budget squeezes) before trusting
// it. A plan repaired by a ladder rung replaces the base result, including
// for -emit.
//
// SIGINT/SIGTERM cancels the search; the best state found so far is
// printed and the process exits 0 (the search is anytime — an interrupted
// run is a valid, just less optimized, result).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"magis/internal/codegen"
	"magis/internal/cost"
	"magis/internal/faults"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/robust"
	"magis/internal/sched"
)

func main() {
	var (
		model   = flag.String("model", "mlp", "workload: resnet|bert|vit|unet|unetpp|gptneo|btlm|mlp")
		scale   = flag.Float64("scale", 1, "batch-size scale factor (0,1]")
		mode    = flag.String("mode", "mem", "optimize: mem (under latency limit) | latency (under memory limit)")
		limit   = flag.Float64("limit", 0.10, "constraint: latency overhead for -mode mem, memory ratio for -mode latency")
		budget  = flag.Duration("budget", 10*time.Second, "search time budget (paper: 3m)")
		level   = flag.Int("L", 4, "F-Tree max level")
		workers = flag.Int("workers", 0, "parallel candidate evaluations (0 = GOMAXPROCS, 1 = sequential)")
		emit    = flag.String("emit", "", "write a PyTorch script for the optimized graph to this path")

		audit     = flag.Bool("audit", false, "differential plan audit + re-optimization ladder (implied by -faults)")
		faultsN   = flag.Int("faults", 0, "replay the plan under N seeded fault scenarios (0 = off)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
		headroom  = flag.Float64("headroom", 0.10, "budget margin the re-optimization ladder reserves, in (0,0.9]")
	)
	flag.Parse()

	// Validate every flag before doing any work, so a typo fails in
	// milliseconds rather than after a multi-second baseline evaluation.
	if *scale <= 0 || *scale > 1 {
		fatalf("invalid -scale %v: must be in (0,1]", *scale)
	}
	if *mode != "mem" && *mode != "latency" {
		fatalf("unknown -mode %q: want mem or latency", *mode)
	}
	if *faultsN < 0 {
		fatalf("invalid -faults %d: must be >= 0", *faultsN)
	}
	if *headroom <= 0 || *headroom > 0.9 {
		fatalf("invalid -headroom %v: must be in (0,0.9]", *headroom)
	}
	w, err := workload(*model, *scale)
	if err != nil {
		fatalf("%v (want resnet|bert|vit|unet|unetpp|gptneo|btlm|mlp)", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := cost.NewModel(cost.RTX3090())
	base := opt.Baseline(w.G, m)
	fmt.Printf("workload: %s\n", w)
	fmt.Printf("baseline: %s\n", base.Summary())

	o := opt.Options{TimeBudget: *budget, MaxLevel: *level, Workers: *workers}
	switch *mode {
	case "mem":
		o.Mode = opt.MemoryUnderLatency
		o.LatencyLimit = base.Latency * (1 + *limit)
		fmt.Printf("goal: minimize memory, latency <= +%.0f%%\n", 100**limit)
	case "latency":
		o.Mode = opt.LatencyUnderMemory
		o.MemLimit = int64(*limit * float64(base.PeakMem))
		fmt.Printf("goal: minimize latency, memory <= %.0f%% (%.2f GB)\n", 100**limit, gb(o.MemLimit))
	}

	start := time.Now()
	res, err := opt.OptimizeCtx(ctx, w.G, m, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	best := res.Best
	fmt.Printf("\nsearch stopped: %s after %v (%d iterations, %d transformations, %d duplicates filtered)\n",
		res.Stopped, time.Since(start).Round(time.Millisecond),
		res.Stats.Iterations, res.Stats.Trans, res.Stats.Filtered)
	if n := res.Diagnostics.Panics(); n > 0 {
		fmt.Printf("contained: %d rule panic(s); quarantined rules: %s\n",
			n, strings.Join(res.Diagnostics.Quarantined(), ", "))
	}
	fmt.Printf("best:     %s\n", best.Summary())
	fmt.Printf("result:   peak %.2f GB (%.0f%% of baseline), latency %.2f ms (%+.1f%%)\n",
		gb(best.PeakMem), 100*float64(best.PeakMem)/float64(base.PeakMem),
		best.Latency*1e3, 100*(best.Latency/base.Latency-1))
	enabled := best.FT.EnabledNodes()
	fmt.Printf("fission:  %d region(s) enabled", len(enabled))
	for _, n := range enabled {
		fmt.Printf("  [|S|=%d n=%d]", len(n.T.S), n.N)
	}
	fmt.Println()
	fmt.Println("\nconvergence:")
	for _, h := range res.History {
		fmt.Printf("  t=%-10v peak %.2f GB  latency %.2f ms\n",
			h.Elapsed.Round(time.Millisecond), gb(h.PeakMem), h.Latency*1e3)
	}

	if *audit || *faultsN > 0 {
		lo := robust.Options{
			Opt:          o,
			Headroom:     *headroom,
			Faults:       faults.Defaults(*faultSeed, *faultsN),
			ReplayFaults: *faultsN > 0,
			Initial:      res,
		}
		fmt.Println("\nexecution feasibility:")
		lad, err := robust.Reoptimize(ctx, w.G, m, lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, a := range lad.Attempts {
			fmt.Printf("rung %-11s", a.Rung)
			if a.Err != "" {
				fmt.Printf(" skipped: %s\n", a.Err)
				continue
			}
			if a.MemLimit > 0 {
				fmt.Printf(" limit %.2f GB ", gb(a.MemLimit))
			}
			fmt.Printf(" peak %.2f GB  latency %.2f ms  feasible=%v\n",
				gb(a.PeakMem), a.Latency*1e3, a.Feasible)
			fmt.Print(a.Audit)
			if a.Replay != nil {
				fmt.Printf("  %s\n", a.Replay)
			}
		}
		fmt.Printf("ladder: %s\n", lad.Summary())
		if lad.Survived && lad.Repaired {
			best = lad.Best
			fmt.Printf("repaired: %s\n", best.Summary())
		} else if !lad.Survived {
			fmt.Println("warning: no rung produced a feasible plan; keeping the base result")
		}
	}

	if *emit != "" {
		mg, err := best.FT.Materialize(best.G)
		if err != nil {
			fmt.Fprintf(os.Stderr, "materialize for codegen: %v (emitting without fission)\n", err)
			mg = best.G.Clone()
		}
		sc := &sched.Scheduler{}
		src, err := codegen.PyTorch(mg, sc.ScheduleGraph(mg), codegen.Options{
			Label: fmt.Sprintf("%s (%s mode, limit %.2f)", w.Name, *mode, *limit),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*emit, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nPyTorch script written to %s\n", *emit)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }

func workload(name string, scale float64) (*models.Workload, error) {
	b := func(n int) int {
		s := int(float64(n) * scale)
		if s < 1 {
			return 1
		}
		return s
	}
	switch strings.ToLower(name) {
	case "resnet", "resnet50":
		return models.ResNet50(b(64), 224), nil
	case "bert":
		return models.BERTBase(b(32), 512), nil
	case "vit":
		return models.ViTBase(b(64), 224, 16), nil
	case "unet":
		return models.UNet(b(32), 256), nil
	case "unetpp", "unet++":
		return models.UNetPP(b(16), 256), nil
	case "gptneo", "gpt-neo":
		return models.GPTNeo13B(b(32), 512), nil
	case "btlm":
		return models.BTLM3B(b(32), 512), nil
	case "mlp":
		return models.MLP(b(8192), 256, 512, 10, 4), nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}
