// Command magis optimizes one workload's training graph under a memory or
// latency constraint and prints the result, mirroring the optimization
// modes of §6.2.
//
// Usage:
//
//	magis -model bert -mode mem -limit 0.10 -budget 30s
//	magis -model unet -mode latency -limit 0.6 -budget 1m
//
// With -mode mem, -limit is the allowed latency overhead (0.10 = +10%) and
// peak memory is minimized; with -mode latency, -limit is the memory ratio
// vs the unoptimized baseline (0.6 = 60%) and latency is minimized.
//
// -audit cross-validates the optimized plan's three peak estimators
// (differential plan audit) and walks the adaptive re-optimization ladder
// if the plan is infeasible; -faults N additionally replays the plan under
// N seeded fault scenarios (cost-model noise, swap-bandwidth degradation,
// transient transfer failures, co-tenant budget squeezes) before trusting
// it. A plan repaired by a ladder rung replaces the base result, including
// for -emit.
//
// SIGINT/SIGTERM cancels the search; the best state found so far is
// printed and the process exits 0 (the search is anytime — an interrupted
// run is a valid, just less optimized, result).
//
// -verify numerically executes the optimized plan against the memory
// planner's concrete arena offsets (trapping use-after-free and overlap
// bugs) and cross-checks its outputs against the unoptimized graph on
// seeded inputs; a failed verification exits 1.
//
// -checkpoint makes the search crash-safe: it periodically snapshots its
// full state to the given path (atomically), and a later run with
// -resume <path> continues from the snapshot under the remaining budget —
// including after SIGKILL. A resumed run takes its workload and options
// from the snapshot; -model/-mode/-limit/-budget are ignored.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"magis/internal/cliutil"
	"magis/internal/codegen"
	"magis/internal/cost"
	"magis/internal/faults"
	"magis/internal/graph"
	"magis/internal/graphio"
	"magis/internal/ingest"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/robust"
	"magis/internal/sched"
	"magis/internal/verify"
)

func main() {
	var (
		model   = flag.String("model", "mlp", "workload: resnet|bert|vit|unet|unetpp|gptneo|btlm|mlp")
		scale   = flag.Float64("scale", 1, "batch-size scale factor (0,1]")
		mode    = flag.String("mode", "mem", "optimize: mem (under latency limit) | latency (under memory limit)")
		limit   = flag.Float64("limit", 0.10, "constraint: latency overhead for -mode mem, memory ratio for -mode latency")
		budget  = flag.Duration("budget", 10*time.Second, "search time budget (paper: 3m)")
		level   = flag.Int("L", 4, "F-Tree max level")
		workers = flag.Int("workers", 0, "parallel candidate evaluations (0 = GOMAXPROCS, 1 = sequential)")
		iters   = flag.Int("iters", 0, "cap search expansions (0 = budget-bound only; fixed work => deterministic result)")
		strict  = flag.Bool("strict-hash", false, "disable incremental WL hashing (escape hatch; the two paths are bit-identical)")
		emit    = flag.String("emit", "", "write a PyTorch script for the optimized graph to this path")
		load    = flag.String("load", "", "optimize a graph document (graphio format) through the hardened ingest pipeline instead of -model")
		saveG   = flag.String("save-graph", "", "write the selected workload's graph document to this path and exit (no search)")
		memBudg = flag.String("mem-budget", "", "soft live-memory budget for the search itself (e.g. 512MiB); over budget the search sheds frontier state and, at worst, stops with its best-so-far (empty = off)")

		ckpt   = flag.String("checkpoint", "", "periodically snapshot the search to this path (crash-safe; see -resume)")
		resume = flag.String("resume", "", "continue an interrupted search from this checkpoint under its remaining budget")

		verifyPlan = flag.Bool("verify", false, "numerically verify the optimized plan: arena-safe execution + output cross-check vs the input graph")
		verifySeed = flag.Uint64("verify-seed", 1, "seed for the verification inputs")

		audit     = flag.Bool("audit", false, "differential plan audit + re-optimization ladder (implied by -faults)")
		faultsN   = flag.Int("faults", 0, "replay the plan under N seeded fault scenarios (0 = off)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
		headroom  = flag.Float64("headroom", 0.10, "budget margin the re-optimization ladder reserves, in (0,0.9]")
	)
	flag.Parse()

	// Validate every flag before doing any work, so a typo fails in
	// milliseconds rather than after a multi-second baseline evaluation.
	if err := (cliutil.Search{Scale: *scale, Budget: *budget, Workers: *workers,
		Headroom: *headroom, Faults: *faultsN}).Validate(); err != nil {
		fatalf("%v", err)
	}
	if *mode != "mem" && *mode != "latency" {
		fatalf("unknown -mode %q: want mem or latency", *mode)
	}
	if *iters < 0 {
		fatalf("invalid -iters %d: must be >= 0", *iters)
	}
	memBudget, err := cliutil.ParseBytes(*memBudg)
	if err != nil {
		fatalf("-mem-budget: %v", err)
	}
	if *resume != "" {
		if *ckpt != "" {
			fatalf("-resume and -checkpoint are mutually exclusive: a resumed search keeps checkpointing to its own snapshot path")
		}
		if *audit || *faultsN > 0 {
			fatalf("-audit/-faults cannot be combined with -resume (run them on the finished result instead)")
		}
		if *verifyPlan {
			fatalf("-verify cannot be combined with -resume: the snapshot has no input graph to cross-check against")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := cost.NewModel(cost.RTX3090())
	var (
		res   *opt.Result
		o     opt.Options
		input *graph.Graph
		wName string
	)
	start := time.Now()
	if *resume != "" {
		info, err := opt.ReadCheckpointInfo(*resume)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("resuming %s from %s: %d expansion(s) done, %v already spent\n",
			info.Label, *resume, info.Iterations, info.Elapsed.Round(time.Millisecond))
		res, err = opt.Resume(ctx, *resume, m, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wName = info.Label
	} else {
		var w *models.Workload
		if *load != "" {
			// Loaded graph documents are untrusted input: they go through
			// the same strict decode, structural limits, and search-cost
			// preflight the service applies, so a hostile file fails with a
			// positional reason instead of a panic mid-search.
			f, err := os.Open(*load)
			if err != nil {
				fatalf("%v", err)
			}
			g, _, err := ingest.Decode(f, ingest.Limits{})
			f.Close()
			if err != nil {
				fatalf("-load %s: %v", *load, err)
			}
			if err := ingest.Preflight(g, opt.Options{Workers: *workers}, ingest.Limits{}); err != nil {
				fatalf("-load %s: %v", *load, err)
			}
			w = &models.Workload{Name: fmt.Sprintf("graph-%016x", g.WLHash()), G: g}
		} else {
			var err error
			w, err = models.ByName(*model, *scale)
			if err != nil {
				fatalf("%v", err)
			}
		}
		if *saveG != "" {
			f, err := os.Create(*saveG)
			if err != nil {
				fatalf("%v", err)
			}
			if err := graphio.Save(f, w.G, nil); err != nil {
				fatalf("-save-graph: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("-save-graph: %v", err)
			}
			fmt.Printf("wrote %s (%d nodes) to %s\n", w.Name, w.G.Len(), *saveG)
			return
		}
		base := opt.Baseline(w.G, m)
		fmt.Printf("workload: %s\n", w)
		fmt.Printf("baseline: %s\n", base.Summary())

		o = opt.Options{TimeBudget: *budget, MaxLevel: *level, Workers: *workers,
			MaxIterations: *iters, StrictHash: *strict, MemBudget: memBudget}
		switch *mode {
		case "mem":
			o.Mode = opt.MemoryUnderLatency
			o.LatencyLimit = base.Latency * (1 + *limit)
			fmt.Printf("goal: minimize memory, latency <= +%.0f%%\n", 100**limit)
		case "latency":
			o.Mode = opt.LatencyUnderMemory
			o.MemLimit = int64(*limit * float64(base.PeakMem))
			fmt.Printf("goal: minimize latency, memory <= %.0f%% (%.2f GB)\n", 100**limit, gb(o.MemLimit))
		}
		if *ckpt != "" {
			o.Checkpoint = opt.Checkpoint{Path: *ckpt, Label: w.Name}
			fmt.Printf("checkpointing to %s\n", *ckpt)
		}

		res, err = opt.OptimizeCtx(ctx, w.G, m, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = w.G
		wName = w.Name
	}
	base := res.Baseline
	best := res.Best
	fmt.Printf("\nsearch stopped: %s after %v (%d iterations, %d transformations, %d duplicates filtered)\n",
		res.Stopped, time.Since(start).Round(time.Millisecond),
		res.Stats.Iterations, res.Stats.Trans, res.Stats.Filtered)
	if n := res.Diagnostics.Panics(); n > 0 {
		fmt.Printf("contained: %d rule panic(s); quarantined rules: %s\n",
			n, strings.Join(res.Diagnostics.Quarantined(), ", "))
	}
	if gov := res.Governor; gov != nil && gov.Stage > 0 {
		fmt.Printf("governor: budget %.2f GB, peak %.2f GB — stage %d: %d state(s) evicted, %d knob shrink(s), %d pool flush(es)\n",
			gb(gov.Budget), gb(gov.PeakBytes), gov.Stage, gov.EvictedStates, gov.Shrinks, gov.Flushes)
	}
	if ck := res.Checkpoint; ck != nil {
		if ck.Err != "" {
			fmt.Fprintf(os.Stderr, "checkpoint degraded: %s\n", ck.Err)
		} else {
			fmt.Printf("checkpoint: %d snapshot(s) written to %s\n", ck.Writes, ck.Path)
		}
	}
	fmt.Printf("best:     %s\n", best.Summary())
	fmt.Printf("result:   peak %.2f GB (%.0f%% of baseline), latency %.2f ms (%+.1f%%)\n",
		gb(best.PeakMem), 100*float64(best.PeakMem)/float64(base.PeakMem),
		best.Latency*1e3, 100*(best.Latency/base.Latency-1))
	enabled := best.FT.EnabledNodes()
	fmt.Printf("fission:  %d region(s) enabled", len(enabled))
	for _, n := range enabled {
		fmt.Printf("  [|S|=%d n=%d]", len(n.T.S), n.N)
	}
	fmt.Println()
	fmt.Println("\nconvergence:")
	for _, h := range res.History {
		fmt.Printf("  t=%-10v peak %.2f GB  latency %.2f ms\n",
			h.Elapsed.Round(time.Millisecond), gb(h.PeakMem), h.Latency*1e3)
	}

	if *audit || *faultsN > 0 {
		lo := robust.Options{
			Opt:          o,
			Headroom:     *headroom,
			Faults:       faults.Defaults(*faultSeed, *faultsN),
			ReplayFaults: *faultsN > 0,
			Verify:       *verifyPlan,
			VerifySeed:   *verifySeed,
			Initial:      res,
		}
		fmt.Println("\nexecution feasibility:")
		lad, err := robust.Reoptimize(ctx, input, m, lo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, a := range lad.Attempts {
			fmt.Printf("rung %-11s", a.Rung)
			if a.Err != "" {
				fmt.Printf(" skipped: %s\n", a.Err)
				continue
			}
			if a.MemLimit > 0 {
				fmt.Printf(" limit %.2f GB ", gb(a.MemLimit))
			}
			fmt.Printf(" peak %.2f GB  latency %.2f ms  feasible=%v\n",
				gb(a.PeakMem), a.Latency*1e3, a.Feasible)
			fmt.Print(a.Audit)
			if a.Replay != nil {
				fmt.Printf("  %s\n", a.Replay)
			}
			if a.Verify != nil {
				fmt.Printf("  %s", a.Verify)
			}
		}
		fmt.Printf("ladder: %s\n", lad.Summary())
		if lad.Survived && lad.Repaired {
			best = lad.Best
			fmt.Printf("repaired: %s\n", best.Summary())
		} else if !lad.Survived {
			fmt.Println("warning: no rung produced a feasible plan; keeping the base result")
		}
	}

	if *verifyPlan {
		mg, err := best.FT.Materialize(best.G)
		if err != nil {
			fatalf("materialize for verification: %v", err)
		}
		rep := verify.Check(input, mg, *verifySeed)
		rep.Workload = wName
		fmt.Printf("\n%s", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}

	if *emit != "" {
		mg, err := best.FT.Materialize(best.G)
		if err != nil {
			fmt.Fprintf(os.Stderr, "materialize for codegen: %v (emitting without fission)\n", err)
			mg = best.G.Clone()
		}
		sc := &sched.Scheduler{}
		src, err := codegen.PyTorch(mg, sc.ScheduleGraph(mg), codegen.Options{
			Label: fmt.Sprintf("%s (%s mode, limit %.2f)", wName, *mode, *limit),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*emit, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nPyTorch script written to %s\n", *emit)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }
