// Package magis is a from-scratch Go implementation of MAGIS (ASPLOS'24):
// DNN memory optimization via coordinated graph transformation and
// scheduling. It bundles a computation-graph IR with reverse-mode
// autodiff, a Dimension-Graph/F-Tree fission engine, re-materialization
// and swapping as graph transformations, DP-based re-ordering with
// incremental scheduling, an analytic GPU cost model with a two-stream
// execution simulator, the paper's seven evaluation workloads, and the
// baselines it compares against (POFO, DTR, XLA, TVM, Torch-Inductor).
//
// Quick start:
//
//	w := magis.MLP(8192, 256, 512, 10, 4)
//	res, err := magis.Optimize(w.G, magis.NewModel(magis.RTX3090()), magis.Options{
//		Mode:         magis.MemoryUnderLatency,
//		LatencyLimit: magis.Baseline(w.G, m).Latency * 1.10,
//	})
//
// The heavy lifting lives in the internal packages; this facade re-exports
// the stable surface.
package magis

import (
	"context"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/sched"
	"magis/internal/sim"
)

// Core graph types.
type (
	// Graph is the computation-graph IR.
	Graph = graph.Graph
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// Schedule is an execution order.
	Schedule = sched.Schedule
)

// NewGraph returns an empty computation graph.
func NewGraph() *Graph { return graph.New() }

// Cost model / device types.
type (
	// Device describes the simulated accelerator.
	Device = cost.Device
	// Model prices operator latencies on one Device.
	Model = cost.Model
)

// RTX3090 returns the paper's evaluation device.
func RTX3090() *Device { return cost.RTX3090() }

// NewModel returns a cost model with a fresh performance cache.
func NewModel(d *Device) *Model { return cost.NewModel(d) }

// Optimization types.
type (
	// Options configures the M-Optimizer search (Algorithm 3).
	Options = opt.Options
	// Result is an optimization outcome with statistics and history.
	Result = opt.Result
	// State is one M-State: graph, F-Tree, schedule, measurements.
	State = opt.State
	// ParetoPoint is one point of a memory/latency trade-off curve.
	ParetoPoint = opt.ParetoPoint
	// StopReason explains why an anytime search returned (Result.Stopped).
	StopReason = opt.StopReason
	// Diagnostics records contained per-rule failures of one run.
	Diagnostics = opt.Diagnostics
	// RuleDiag is one rule's panic/quarantine counters.
	RuleDiag = opt.RuleDiag
	// RuleError is a panic recovered from one rule application, converted
	// into a diagnostic instead of crashing the search.
	RuleError = opt.RuleError
)

// Optimization modes.
const (
	// LatencyUnderMemory minimizes latency subject to a memory limit.
	LatencyUnderMemory = opt.LatencyUnderMemory
	// MemoryUnderLatency minimizes peak memory subject to a latency limit.
	MemoryUnderLatency = opt.MemoryUnderLatency
)

// Stop reasons (Result.Stopped).
const (
	// StopConverged: the candidate queue drained.
	StopConverged = opt.StopConverged
	// StopDeadline: the TimeBudget or context deadline expired.
	StopDeadline = opt.StopDeadline
	// StopCancelled: the caller cancelled the context.
	StopCancelled = opt.StopCancelled
	// StopExhausted: MaxIterations queue pops were spent.
	StopExhausted = opt.StopExhausted
)

// ErrInitialEval wraps the one fatal optimizer error: the unoptimized
// input graph could not be evaluated. Check with errors.Is.
var ErrInitialEval = opt.ErrInitialEval

// Optimize runs MAGIS's coordinated transformation + scheduling search.
func Optimize(g *Graph, m *Model, o Options) (*Result, error) {
	return opt.Optimize(g, m, o)
}

// OptimizeCtx is Optimize with cooperative cancellation: the search checks
// ctx at every queue pop and between candidate evaluations, and on
// cancellation or deadline returns the best state found so far with
// Result.Stopped set — never an error once the initial evaluation
// succeeds.
func OptimizeCtx(ctx context.Context, g *Graph, m *Model, o Options) (*Result, error) {
	return opt.OptimizeCtx(ctx, g, m, o)
}

// ValidateGraph checks the structural invariants of a computation graph:
// acyclicity, edge consistency, per-edge shape agreement, and Store/Load
// pairing. Options.CheckInvariants runs it inside the search.
func ValidateGraph(g *Graph) error { return graph.Validate(g) }

// Baseline evaluates g unoptimized (program order, free-after-last-use) —
// the PyTorch reference every paper figure normalizes against.
func Baseline(g *Graph, m *Model) *State { return opt.Baseline(g, m) }

// Sweep traces the Pareto boundary across memory-ratio constraints.
// SweepCtx is the cancellable variant; an interrupted sweep returns the
// partial frontier traced so far.
var (
	Sweep    = opt.Sweep
	SweepCtx = opt.SweepCtx
)

// Simulation types.
type (
	// SimConfig controls the two-stream execution simulator.
	SimConfig = sim.Config
	// SimResult is a simulated execution's latency/memory outcome.
	SimResult = sim.Result
)

// Simulate executes g in the given order on the event simulator.
func Simulate(g *Graph, order Schedule, cfg SimConfig) *SimResult {
	return sim.Run(g, order, cfg)
}

// Workload is a benchmark network with its training graph.
type Workload = models.Workload

// The paper's evaluation workloads (Table 2) plus helpers.
var (
	ResNet50   = models.ResNet50
	BERTBase   = models.BERTBase
	ViTBase    = models.ViTBase
	UNet       = models.UNet
	UNetPP     = models.UNetPP
	GPTNeo13B  = models.GPTNeo13B
	BTLM3B     = models.BTLM3B
	MLP        = models.MLP
	Table2     = models.Table2
	SmallSuite = models.SmallSuite
)
