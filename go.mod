module magis

go 1.22
