package magis

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd drives the whole public API: build a workload,
// measure the baseline, optimize memory under a latency bound, simulate
// the result.
func TestFacadeEndToEnd(t *testing.T) {
	w := MLP(4096, 256, 512, 10, 3)
	m := NewModel(RTX3090())
	base := Baseline(w.G, m)
	if base.PeakMem <= 0 || base.Latency <= 0 {
		t.Fatalf("bad baseline: %+v", base)
	}
	res, err := Optimize(w.G, m, Options{
		Mode:            MemoryUnderLatency,
		LatencyLimit:    base.Latency * 1.10,
		TimeBudget:      time.Second,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.PeakMem >= base.PeakMem {
		t.Errorf("no improvement: %d -> %d", base.PeakMem, res.Best.PeakMem)
	}
	if res.Best.Latency > base.Latency*1.101 {
		t.Errorf("latency bound violated: %g vs %g", res.Best.Latency, base.Latency*1.10)
	}
	r := Simulate(res.Best.EvalG, res.Best.Sched, SimConfig{Model: m})
	if r.Latency <= 0 {
		t.Error("simulation failed")
	}
}

func TestFacadeSweep(t *testing.T) {
	w := MLP(4096, 256, 512, 10, 3)
	m := NewModel(RTX3090())
	pts, err := Sweep(w.G, m, []float64{0.7, 0.5}, 400*time.Millisecond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("front too small: %v", pts)
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatal("fresh graph not empty")
	}
}

// TestHeadlineUNetReduction guards the reproduction's headline result: on
// the paper-scale U-Net training step, coordinated fission + scheduling
// cuts peak memory to a small fraction of the baseline within a 10%
// latency budget, far beyond what scheduling alone reaches (Fig. 9's
// U-Net column).
func TestHeadlineUNetReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale search in -short mode")
	}
	w := UNet(32, 256)
	m := NewModel(RTX3090())
	base := Baseline(w.G, m)
	res, err := Optimize(w.G, m, Options{
		Mode:            MemoryUnderLatency,
		LatencyLimit:    base.Latency * 1.10,
		TimeBudget:      3 * time.Second,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Best.PeakMem) / float64(base.PeakMem)
	t.Logf("UNet b32: ratio %.3f at %+.1f%% latency", ratio, 100*(res.Best.Latency/base.Latency-1))
	if ratio > 0.50 {
		t.Errorf("headline regression: memory ratio %.2f, expected well below 0.50", ratio)
	}
	if res.Best.Latency > base.Latency*1.101 {
		t.Errorf("latency constraint violated: %+.1f%%", 100*(res.Best.Latency/base.Latency-1))
	}
}
