// U-Net Pareto example: trace the memory/latency trade-off curve of a
// U-Net training step (the Fig. 11/16 case study). U-Net's long skip
// connections give activations very long lifetimes, which is exactly the
// structure where coordinated fission + swapping beats scheduling alone.
package main

import (
	"fmt"
	"time"

	"magis"
	"magis/internal/baselines"
	"magis/internal/models"
)

func main() {
	w := models.UNetConfig(4, 128, 32, 4)
	m := magis.NewModel(magis.RTX3090())
	base := magis.Baseline(w.G, m)
	fmt.Printf("workload: %s\n", w)
	fmt.Printf("baseline: peak %.2f GB, latency %.1f ms\n\n",
		float64(base.PeakMem)/(1<<30), base.Latency*1e3)

	ratios := []float64{0.8, 0.6, 0.4}
	fmt.Println("MAGIS Pareto sweep:")
	pts, err := magis.Sweep(w.G, m, ratios, 3*time.Second, magis.Options{})
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("  memory %.0f%%  latency %+.1f%%\n", 100*p.MemRatio, 100*p.LatOverhead)
	}

	fmt.Println("\nbaselines at the same limits:")
	for _, o := range []baselines.Optimizer{baselines.POFO{}, baselines.DTR{}, baselines.XLA{}} {
		for _, r := range ratios {
			limit := int64(r * float64(base.PeakMem))
			res := o.OptimizeMem(w.G, m, limit)
			if !res.OK {
				fmt.Printf("  %-5s @%2.0f%%: FAILURE\n", o.Name(), 100*r)
				continue
			}
			fmt.Printf("  %-5s @%2.0f%%: memory %.0f%%  latency %+.1f%%\n",
				o.Name(), 100*r,
				100*float64(res.PeakMem)/float64(base.PeakMem),
				100*(res.Latency/base.Latency-1))
		}
	}
}
