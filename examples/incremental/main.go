// Incremental scheduling example (the §7.3 study): after each graph
// transformation, Algorithm 2 reschedules only the narrow-waist-bounded
// interval around the mutation instead of the whole graph, and almost
// always lands on the same peak memory an order of magnitude faster.
package main

import (
	"fmt"
	"time"

	"magis/internal/models"
	"magis/internal/rules"
	"magis/internal/sched"
)

func main() {
	w := models.RandomNASNet(7, 8, 24, 24, 4)
	g := w.G
	fmt.Printf("random NASNet-like DNN: %d operators\n\n", g.Len())

	sc := &sched.Scheduler{}
	psi := sc.ScheduleGraph(g)
	fmt.Printf("%-6s %-14s %12s %12s %9s %8s\n",
		"round", "rule", "full-sched", "incremental", "speedup", "quality")

	for round := 1; round <= 8; round++ {
		prof := sched.Simulate(g, psi)
		ctx := &rules.Context{Hot: prof.Hotspots, MaxSites: 2, UseHotFilter: true}
		var app *rules.Application
		for _, r := range rules.All() {
			if apps := r.Apply(g, ctx); len(apps) > 0 {
				app = &apps[0]
				break
			}
		}
		if app == nil {
			fmt.Println("no applicable transformation; stopping")
			break
		}

		t0 := time.Now()
		full := sc.ScheduleGraph(app.Graph)
		tFull := time.Since(t0)

		t1 := time.Now()
		inc, n := sc.Incremental(g, app.Graph, app.OldMutated, psi)
		tInc := time.Since(t1)

		pFull := sched.PeakOnly(app.Graph, full)
		pInc := sched.PeakOnly(app.Graph, inc)
		fmt.Printf("%-6d %-14s %12v %12v %8.1fx %8.3f  (%d ops rescheduled)\n",
			round, app.Rule, tFull.Round(time.Microsecond), tInc.Round(time.Microsecond),
			float64(tFull)/float64(tInc), float64(pInc)/float64(pFull), n)

		g, psi = app.Graph, inc
	}
}
