// Quickstart: build a training graph, measure its unoptimized memory
// profile, then let MAGIS coordinate fission, swapping, re-materialization
// and re-ordering to cut peak memory under a +10% latency budget.
package main

import (
	"fmt"
	"time"

	"magis"
)

func main() {
	// An activation-heavy MLP: batch 8192, four hidden layers of width 512.
	w := magis.MLP(8192, 256, 512, 10, 4)
	m := magis.NewModel(magis.RTX3090())

	base := magis.Baseline(w.G, m)
	fmt.Printf("workload      %s\n", w)
	fmt.Printf("unoptimized   peak %6.1f MB   latency %6.2f ms\n",
		mb(base.PeakMem), base.Latency*1e3)

	res, err := magis.Optimize(w.G, m, magis.Options{
		Mode:         magis.MemoryUnderLatency,
		LatencyLimit: base.Latency * 1.10,
		TimeBudget:   3 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	best := res.Best
	fmt.Printf("MAGIS         peak %6.1f MB   latency %6.2f ms\n",
		mb(best.PeakMem), best.Latency*1e3)
	fmt.Printf("              %.0f%% of baseline memory at %+.1f%% latency\n",
		100*float64(best.PeakMem)/float64(base.PeakMem),
		100*(best.Latency/base.Latency-1))

	fmt.Println("\nwhat the optimizer did:")
	fmt.Printf("  fission regions enabled: %d\n", len(best.FT.EnabledNodes()))
	for _, n := range best.FT.EnabledNodes() {
		fmt.Printf("    sub-graph of %d operators split into %d parts\n", len(n.T.S), n.N)
	}
	stores, loads := 0, 0
	for _, v := range best.G.NodeIDs() {
		switch best.G.Node(v).Op.Kind() {
		case "Store":
			stores++
		case "Load":
			loads++
		}
	}
	fmt.Printf("  swaps inserted: %d store/%d load\n", stores, loads)
	fmt.Printf("  search: %d iterations, %d candidate states, %d duplicates filtered\n",
		res.Stats.Iterations, res.Stats.Trans, res.Stats.Filtered)
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
