// Transformer example: inspect the Dimension Graph and Fission Hierarchy
// Tree of a transformer block (the Fig. 4 analysis), then optimize the
// full training step. Shows which graph-level dimensions (batch, heads,
// sequence) MAGIS discovers and how attention can be row-blocked without
// slicing K and V.
package main

import (
	"fmt"
	"sort"
	"time"

	"magis"
	"magis/internal/dgraph"
	"magis/internal/ftree"
	"magis/internal/models"
	"magis/internal/sched"
)

func main() {
	// A small BERT-style LM so the analysis is readable.
	w := models.TransformerLM("demo-bert", 8, 128, 256, 2, 8, 5000, 0, false)
	fmt.Printf("workload: %s\n\n", w)

	// 1. Dimension graph: the graph-level dimensions of §4.1.
	d := dgraph.Build(w.G)
	comps := d.Components()
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	fmt.Printf("dimension graph: %d multi-node components (graph-level dimensions)\n", len(comps))
	for i, c := range comps[:3] {
		fmt.Printf("  component %d: %d dimension-vertices across %d operators\n",
			i, len(c), len(c.GraphNodes()))
	}

	// 2. F-Tree: the hierarchical fission search space of §4.3.
	prof := sched.Simulate(w.G, w.G.Topo())
	tree := ftree.Build(w.G, prof.Hotspots, ftree.Options{MaxLevel: 4})
	fmt.Printf("\nfission hierarchy tree: %d candidates\n%s", tree.Size(), tree.String())

	// 3. Full coordinated optimization.
	m := magis.NewModel(magis.RTX3090())
	base := magis.Baseline(w.G, m)
	res, err := magis.Optimize(w.G, m, magis.Options{
		Mode:         magis.MemoryUnderLatency,
		LatencyLimit: base.Latency * 1.10,
		TimeBudget:   3 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbaseline peak %6.1f MB -> MAGIS %6.1f MB (%.0f%%) at %+.1f%% latency\n",
		float64(base.PeakMem)/(1<<20), float64(res.Best.PeakMem)/(1<<20),
		100*float64(res.Best.PeakMem)/float64(base.PeakMem),
		100*(res.Best.Latency/base.Latency-1))
}
